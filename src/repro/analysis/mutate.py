"""Seeded IR mutation harness: the verifier's own test generator.

Each registered mutation class takes a freshly built, *valid* artifact — a
small graph (with fusion groups and a memory plan) or a hand-built TIR
function — applies one targeted corruption, and declares which typed
:class:`~repro.analysis.errors.VerifierError` subclass the verifier must
raise for it.  :func:`run_all` executes every class and reports, per class,
whether the violation was caught with the exact expected type; a class the
verifier misses is a verifier bug, and the CI ``static-analysis`` job fails.

The harness is deliberately deterministic (``seed`` picks which node/loop of
the artifact gets corrupted, via :class:`random.Random`) so a failure
reproduces exactly from its class name and seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from ..graph.ir import Graph, Node
from ..graph.passes import fuse_ops, plan_memory
from ..te.expr import Add, FloatImm, IntImm, Var
from ..tir.stmt import (Buffer, BufferLoad, BufferStore, For, ForKind,
                        LoweredFunc)
from .errors import (
    DanglingInputError,
    DtypeMismatchError,
    DuplicateNodeNameError,
    FusionLegalityError,
    LayoutError,
    MemoryAliasError,
    OutOfBoundsError,
    ParallelHazardError,
    ShapeMismatchError,
    StorageSizeError,
    TopologicalOrderError,
    UnknownOperatorError,
    UseBeforeDefError,
    VerifierError,
)
from .graph_verify import verify_graph
from .tir_verify import verify_func

__all__ = ["Mutation", "MUTATIONS", "MutationOutcome", "run_mutation",
           "run_all"]


# ---------------------------------------------------------------------------
# Seed artifacts (rebuilt fresh for every mutation)
# ---------------------------------------------------------------------------

def _seed_graph() -> Graph:
    """conv2d -> bias_add -> relu -> dense-free injective tail, plus a second
    consumer so liveness is non-trivial."""
    data = Node("null", "data")
    weight = Node("null", "weight")
    bias = Node("null", "bias")
    conv = Node("conv2d", "conv0", [data, weight],
                {"strides": 1, "padding": 1})
    biased = Node("bias_add", "bias0", [conv, bias])
    act = Node("relu", "relu0", [biased])
    residual = Node("add", "add0", [act, biased])
    graph = Graph([residual])
    graph.infer_shapes({"data": (1, 3, 8, 8), "weight": (8, 3, 3, 3),
                        "bias": (1, 8, 8, 8)})
    return graph


def _seed_tir() -> LoweredFunc:
    """``for i in [0, 16): b[i] = a[i] + 1`` over two 16-element buffers."""
    a = Buffer("a", (16,))
    b = Buffer("b", (16,))
    i = Var("i")
    body = For(i, 0, 16,
               BufferStore(b, [i], Add(BufferLoad(a, [i]), FloatImm(1.0))))
    return LoweredFunc("elemwise", [a, b], body)


# ---------------------------------------------------------------------------
# Mutation classes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Mutation:
    """One corruption class: how to break the IR, what must be raised."""

    name: str
    expected: Type[VerifierError]
    description: str
    apply: Callable[[random.Random], None]


MUTATIONS: Dict[str, Mutation] = {}


def _register(name: str, expected: Type[VerifierError], description: str):
    def decorator(fn: Callable[[random.Random], None]) -> Mutation:
        mutation = Mutation(name, expected, description, fn)
        MUTATIONS[name] = mutation
        return mutation

    return decorator


def _verify_all(graph: Graph, groups=None, memory_plan=None) -> None:
    verify_graph(graph, groups=groups, memory_plan=memory_plan)


@_register("swapped_shapes", ShapeMismatchError,
           "a node's shape annotation is transposed against re-inference")
def _swapped_shapes(rng: random.Random) -> None:
    graph = _seed_graph()
    victim = rng.choice(graph.op_nodes)
    shape = tuple(victim.shape)
    victim.shape = shape[::-1] if shape[::-1] != shape else shape[:-1] + (99,)
    _verify_all(graph)


@_register("dropped_node", DanglingInputError,
           "a producer is removed from the node list but still referenced")
def _dropped_node(rng: random.Random) -> None:
    graph = _seed_graph()
    interior = [n for n in graph.op_nodes if n not in graph.outputs]
    victim = rng.choice(interior)
    graph.nodes = [n for n in graph.nodes if n is not victim]
    _verify_all(graph)


@_register("duplicate_names", DuplicateNodeNameError,
           "two distinct nodes are given the same name")
def _duplicate_names(rng: random.Random) -> None:
    graph = _seed_graph()
    first, second = rng.sample(graph.op_nodes, 2)
    second.name = first.name
    _verify_all(graph)


@_register("topo_disorder", TopologicalOrderError,
           "the node list is reordered so a consumer precedes its producer")
def _topo_disorder(rng: random.Random) -> None:
    graph = _seed_graph()
    ops = graph.op_nodes
    producer = rng.choice(ops[:-1])
    graph.nodes.remove(producer)
    graph.nodes.append(producer)  # now after every consumer
    _verify_all(graph)


@_register("unknown_operator", UnknownOperatorError,
           "a node's operator is renamed to an unregistered name")
def _unknown_operator(rng: random.Random) -> None:
    graph = _seed_graph()
    victim = rng.choice(graph.op_nodes)
    victim.op = "totally_unregistered_op"
    _verify_all(graph)


@_register("dtype_corruption", DtypeMismatchError,
           "a node's dtype annotation disagrees with dtype inference")
def _dtype_corruption(rng: random.Random) -> None:
    graph = _seed_graph()
    victim = rng.choice(graph.op_nodes)
    victim.dtype = "float16"
    _verify_all(graph)


@_register("double_fusion", FusionLegalityError,
           "one operator is claimed by two fused groups")
def _double_fusion(rng: random.Random) -> None:
    graph = _seed_graph()
    groups = fuse_ops(graph)
    donor = next(g for g in groups if len(g.nodes) > 1)
    receiver = rng.choice([g for g in groups if g is not donor])
    receiver.nodes.append(donor.nodes[-1])
    _verify_all(graph, groups=groups)


@_register("fusion_dominance", FusionLegalityError,
           "groups are reordered so a kernel reads a tensor produced later")
def _fusion_dominance(rng: random.Random) -> None:
    graph = _seed_graph()
    groups = fuse_ops(graph)
    del rng
    groups.reverse()  # the consumer kernel now executes first
    _verify_all(graph, groups=groups)


@_register("layout_break", LayoutError,
           "an operator demands a tiled layout its producer does not emit")
def _layout_break(rng: random.Random) -> None:
    graph = _seed_graph()
    consumers = [n for n in graph.op_nodes
                 if any(not p.is_variable for p in n.inputs)]
    victim = rng.choice(consumers)
    victim.attrs["data_layout"] = "NCHW16c"
    _verify_all(graph)


@_register("aliased_storage", MemoryAliasError,
           "two simultaneously-live tensors are forced onto one token")
def _aliased_storage(rng: random.Random) -> None:
    graph = _seed_graph()
    plan = plan_memory(graph)
    # relu0 and bias0 are both live when add0 executes: placing them on the
    # same token is exactly the alias bug the planner must never introduce.
    del rng
    plan.storage_of["relu0"] = plan.storage_of["bias0"]
    _verify_all(graph, memory_plan=plan)


@_register("undersized_storage", StorageSizeError,
           "a storage token is shrunk below its tensor's dtype-aware size")
def _undersized_storage(rng: random.Random) -> None:
    graph = _seed_graph()
    plan = plan_memory(graph)
    token = rng.choice(sorted(plan.token_bytes))
    plan.token_bytes[token] //= 2
    _verify_all(graph, memory_plan=plan)


@_register("oob_buffer_access", OutOfBoundsError,
           "a loop runs past the end of the buffer it stores to")
def _oob_buffer_access(rng: random.Random) -> None:
    func = _seed_tir()
    loop = func.body
    loop.extent = IntImm(16 + rng.randrange(1, 8))
    loop._extent_value = None
    verify_func(func)


@_register("undefined_loop_var", UseBeforeDefError,
           "a buffer index uses a variable no enclosing loop defines")
def _undefined_loop_var(rng: random.Random) -> None:
    func = _seed_tir()
    del rng
    store = func.body.body
    store.indices = [Var("phantom")]
    verify_func(func)


@_register("undefined_buffer", UseBeforeDefError,
           "a kernel reads a buffer that is neither argument nor allocation")
def _undefined_buffer(rng: random.Random) -> None:
    func = _seed_tir()
    del rng
    store = func.body.body
    store.value = Add(BufferLoad(Buffer("ghost", (16,)),
                                 [func.body.loop_var]), FloatImm(1.0))
    verify_func(func)


@_register("parallelized_reduction", ParallelHazardError,
           "a reduction loop is annotated parallel (write-write hazard)")
def _parallelized_reduction(rng: random.Random) -> None:
    del rng
    a = Buffer("a", (16,))
    out = Buffer("out", (1,))
    i = Var("i")
    body = For(i, 0, 16,
               BufferStore(out, [IntImm(0)],
                           Add(BufferLoad(out, [IntImm(0)]),
                               BufferLoad(a, [i]))),
               kind=ForKind.PARALLEL)
    verify_func(LoweredFunc("reduce", [a, out], body))


@_register("vectorized_raw", ParallelHazardError,
           "a vectorized loop reads an element another lane writes")
def _vectorized_raw(rng: random.Random) -> None:
    del rng
    b = Buffer("b", (16,))
    i = Var("i")
    body = For(i, 0, 16,
               BufferStore(b, [i],
                           Add(BufferLoad(b, [IntImm(0)]), FloatImm(1.0))),
               kind=ForKind.VECTORIZED)
    verify_func(LoweredFunc("scan", [b], body))


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------

@dataclass
class MutationOutcome:
    """Result of one mutation class under the verifier."""

    name: str
    expected: str
    caught: bool
    error_type: Optional[str] = None
    message: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.caught


def run_mutation(name: str, seed: int = 0) -> MutationOutcome:
    """Apply one mutation class and check the verifier catches it."""
    mutation = MUTATIONS[name]
    rng = random.Random(seed)
    try:
        mutation.apply(rng)
    except mutation.expected as exc:
        return MutationOutcome(name, mutation.expected.__name__, True,
                               type(exc).__name__, str(exc))
    except VerifierError as exc:  # caught, but with the wrong type
        return MutationOutcome(name, mutation.expected.__name__, False,
                               type(exc).__name__, str(exc))
    return MutationOutcome(name, mutation.expected.__name__, False, None,
                           "verifier accepted the corrupted IR")


def run_all(seed: int = 0) -> List[MutationOutcome]:
    """Run every mutation class; the returned list is MUTATIONS-ordered."""
    return [run_mutation(name, seed=seed) for name in MUTATIONS]
