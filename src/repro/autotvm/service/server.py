"""The tuning service server: one authoritative database, many sessions.

:class:`TuningService` is a long-lived socket server (the accept-loop
analogue of the in-process :class:`repro.runtime.rpc.Tracker` device pool,
listening on a real TCP port) that owns the single authoritative
:class:`~repro.autotvm.database.TuningDatabase` a fleet of tuning sessions
shares.  It provides three things a lone session cannot:

* **Global measurement dedup** — every raw trial measurement any client
  makes is pushed to the service; before measuring a ``(task, target,
  config)`` candidate, clients ask first and reuse the stored result.
  Because measurements are deterministic per ``(seed, task, config)``,
  identically-seeded sessions receive exactly the value they would have
  measured themselves, so deduplication never changes a report.
* **Cross-session transfer** — session bests (with their feature vectors)
  land in the authoritative database; new sessions warm-start their cost
  models from them (:meth:`~repro.autotvm.tuner.ModelBasedTuner.warm_start`)
  even for shapes no client has tuned before.
* **A pretrained cost model** — at startup the service fits one
  gradient-boosted-trees model per (operator family, target) on its
  accumulated history — every feature-bearing raw trial plus the recorded
  bests, throughput-normalised per workload — and ships it to clients, so
  cold sessions explore model-guided from the first batch.

Raw trials and session bests are deliberately kept apart: the trial store
answers dedup lookups and bulk-feeds pretraining, while the database holds
only the floored per-task bests that history-based compilation and
warm-start transfer consume.  When the database is file-backed, the trial
store persists next to it (``<path>.trials``) so a restarted service keeps
both its dedup memory and its training set.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...faults import inject as faults_inject
from ..cost_model import GradientBoostedTrees
from ..database import TuningDatabase, TuningLogEntry, operator_of
from .protocol import MSG, ServiceProtocolError, recv_frame, send_frame

__all__ = ["TuningService"]

logger = logging.getLogger("repro.autotvm.service")

#: samples per (operator, target) group needed before a model is pretrained
_PRETRAIN_MIN_ENTRIES = 8
#: newest samples kept per group when fitting (bounds startup cost)
_PRETRAIN_MAX_ENTRIES = 2048


def _entry_payload(entry: TuningLogEntry) -> Dict:
    payload = {"task": entry.task_name, "target": entry.target_name,
               "config_index": entry.config_index, "config": entry.config_dict,
               "time": entry.mean_time}
    if entry.features is not None:
        payload["features"] = list(entry.features)
    return payload


def entry_from_payload(payload: Dict) -> TuningLogEntry:
    return TuningLogEntry(payload["task"], payload["target"],
                          int(payload["config_index"]), payload["config"],
                          float(payload["time"]),
                          features=payload.get("features"))


class TuningService:
    """A shared tuning-database server for concurrent tuning sessions.

    ::

        with TuningService(db_path="tuning.jsonl").start() as service:
            repro.autotune("resnet-18", target="cuda",
                           options=TuningOptions(service=service.address))

    ``port=0`` (the default) binds an ephemeral port; read the actual
    endpoint from :attr:`address` after :meth:`start`.  The service owns its
    database's writer lock for as long as it runs — it is the sanctioned way
    for many sessions to share one JSONL log.
    """

    def __init__(self, database: Optional[TuningDatabase] = None,
                 db_path: Optional[str] = None, host: str = "127.0.0.1",
                 port: int = 0, pretrain: bool = True):
        if database is not None and db_path is not None:
            raise ValueError("Pass either a database or a db_path, not both")
        self.database = database if database is not None \
            else TuningDatabase(db_path)
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.pretrain = pretrain
        #: raw trial results: (task, target, config index) ->
        #: ``{"time", "error", "features"}``; dedup memory + pretraining food
        self._trials: Dict[Tuple[str, str, int], Dict] = {}
        self._trials_path = (self.database.path + ".trials"
                             if self.database.path else None)
        if self._trials_path and os.path.exists(self._trials_path):
            self._load_trials(self._trials_path)
        self._models: Dict[Tuple[str, str], Dict] = {}
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._stop = threading.Event()
        self._counters = {"connections": 0, "lookups": 0, "dedup_hits": 0,
                          "trials_pushed": 0, "bests_recorded": 0,
                          "warm_requests": 0, "model_requests": 0,
                          "model_hits": 0}

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "TuningService":
        """Bind, pretrain cost models from the accumulated database, and
        begin accepting clients.  Returns ``self``."""
        if self._listener is not None:
            raise RuntimeError("TuningService is already running")
        if self.database.path:
            # Claim the database's writer lock up front: exactly one service
            # per JSONL log, and the conflict is loud at startup, not at the
            # first recorded best.
            self.database._acquire_write_lock()
        if self.pretrain:
            self._pretrain_models()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tuning-service-accept", daemon=True)
        self._accept_thread.start()
        logger.info("tuning service listening on %s (%d entries, %d "
                    "pretrained models)", self.address, len(self.database),
                    len(self._models))
        return self

    @property
    def address(self) -> str:
        if self.port is None:
            raise RuntimeError("TuningService is not running (call start())")
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop accepting, drain handler threads, release the database lock.

        Idempotent; leaves no socket or thread behind (the tuning-service CI
        smoke asserts this)."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for handler in self._handlers:
            handler.join(timeout=5.0)
        self._handlers = []
        self.port = None
        self.database.close()

    def __enter__(self) -> "TuningService":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ trial log
    def _load_trials(self, path: str) -> None:
        """Reload the persisted trial store (first record per key wins,
        matching the live store's semantics)."""
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                key = (record["task"], record["target"],
                       int(record["config_index"]))
                self._trials.setdefault(key, {
                    "time": float(record["time"]),
                    "error": record.get("error"),
                    "features": record.get("features")})

    def _persist_trials(self, rows: List[Dict]) -> None:
        """Append new trial records to the on-disk trial log (caller holds
        the lock; the service owns the database's writer lock, so this file
        has a single writer by construction)."""
        if not self._trials_path or not rows:
            return
        with open(self._trials_path, "a", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------ pretraining
    def _training_samples(self):
        """(operator, target) -> list of (task, features, time) from every
        feature-bearing raw trial plus the recorded bests."""
        groups: Dict[Tuple[str, str], List[Tuple[str, List[float], float]]] = {}
        for (task, target, _index), rec in self._trials.items():
            time, features = rec["time"], rec.get("features")
            if features is None or rec.get("error") is not None \
                    or time <= 0 or not np.isfinite(time):
                continue
            groups.setdefault((operator_of(task), target), []).append(
                (task, features, time))
        for entry in self.database:
            if entry.features is None or entry.mean_time <= 0 \
                    or not np.isfinite(entry.mean_time):
                continue
            groups.setdefault((entry.operator, entry.target_name), []).append(
                (entry.task_name, entry.features, entry.mean_time))
        return groups

    def _pretrain_models(self) -> None:
        """Fit one cost model per (operator, target) on accumulated history.

        Throughputs are normalised *per workload* before pooling, so a fast
        small shape and a slow large shape contribute comparable training
        targets — the model learns what distinguishes good configurations
        within a shape, which is exactly what transfers across shapes.
        """
        for key, samples in self._training_samples().items():
            samples = samples[-_PRETRAIN_MAX_ENTRIES:]
            dim = len(samples[0][1])
            samples = [s for s in samples if len(s[1]) == dim]
            if len(samples) < _PRETRAIN_MIN_ENTRIES:
                continue
            top = {}
            for task, _features, time in samples:
                top[task] = max(top.get(task, 0.0), 1.0 / time)
            x = np.asarray([s[1] for s in samples], dtype=np.float64)
            y = np.asarray([(1.0 / s[2]) / top[s[0]] for s in samples])
            model = GradientBoostedTrees(seed=0)
            model.fit(x, y)
            self._models[key] = model.to_spec()
            logger.info("pretrained cost model for %s/%s on %d samples "
                        "(%d workloads)", key[0], key[1], len(samples),
                        len(top))

    # ------------------------------------------------------------ serving
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                self._counters["connections"] += 1
                # Drop finished handlers so long-lived services don't
                # accumulate dead thread objects.
                self._handlers = [t for t in self._handlers if t.is_alive()]
            handler = threading.Thread(target=self._serve_client,
                                       args=(conn, peer),
                                       name=f"tuning-service-{peer[1]}",
                                       daemon=True)
            self._handlers.append(handler)
            handler.start()

    def _serve_client(self, conn: socket.socket, peer) -> None:
        conn.settimeout(1.0)
        try:
            while not self._stop.is_set():
                try:
                    kind, payload = recv_frame(conn)
                except socket.timeout:
                    continue
                except (ConnectionError, OSError):
                    break
                try:
                    reply_kind, reply = self._dispatch(kind, payload)
                except ServiceProtocolError as exc:
                    reply_kind, reply = MSG.ERROR, {"message": str(exc)}
                except Exception as exc:  # never kill the handler on one request
                    logger.exception("request %s failed", MSG.name(kind))
                    reply_kind, reply = MSG.ERROR, {"message": str(exc)}
                fault = faults_inject("service.handle", peer=peer[1],
                                      kind=MSG.name(kind))
                if fault is not None and fault.get("action") == "delay":
                    # slow_response: stall before replying so clients
                    # exercise their per-RPC timeouts.
                    time.sleep(float(fault.get("seconds", 0.05)))
                try:
                    send_frame(conn, reply_kind, reply)
                except (ConnectionError, OSError):
                    break
                if kind == MSG.SHUTDOWN:
                    # Trip the stop flag after acknowledging; the accept loop
                    # and sibling handlers drain on their next timeout tick.
                    self._stop.set()
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------ dispatch
    def _dispatch(self, kind: int, payload: Dict) -> Tuple[int, Dict]:
        if kind == MSG.HELLO:
            with self._lock:
                return MSG.WELCOME, {"server_pid": os.getpid(),
                                     "entries": len(self.database)}
        if kind == MSG.LOOKUP:
            return self._handle_lookup(payload)
        if kind == MSG.PUSH:
            return self._handle_push(payload)
        if kind == MSG.RECORD:
            return self._handle_record(payload)
        if kind == MSG.BEST:
            return self._handle_best(payload)
        if kind == MSG.WARM:
            return self._handle_warm(payload)
        if kind == MSG.MODEL:
            return self._handle_model(payload)
        if kind == MSG.STATS:
            return MSG.STATS_REPLY, self.stats()
        if kind == MSG.SHUTDOWN:
            return MSG.BYE, {}
        raise ServiceProtocolError(f"Unexpected message {MSG.name(kind)}")

    def _handle_lookup(self, payload: Dict) -> Tuple[int, Dict]:
        keys = payload.get("keys", [])
        results = []
        with self._lock:
            self._counters["lookups"] += len(keys)
            for task, target, index in keys:
                hit = self._trials.get((task, target, int(index)))
                if hit is None:
                    results.append(None)
                else:
                    self._counters["dedup_hits"] += 1
                    results.append({"time": hit["time"],
                                    "error": hit["error"]})
        return MSG.FOUND, {"results": results}

    def _handle_push(self, payload: Dict) -> Tuple[int, Dict]:
        fresh: List[Dict] = []
        with self._lock:
            for record in payload.get("records", []):
                key = (record["task"], record["target"],
                       int(record["config_index"]))
                if key not in self._trials:
                    # First measurement wins: concurrent clients that raced on
                    # the same candidate measured the same deterministic value
                    # anyway, and a stable store keeps later lookups stable.
                    self._trials[key] = {
                        "time": float(record["time"]),
                        "error": record.get("error"),
                        "features": record.get("features")}
                    fresh.append(dict(record))
            self._counters["trials_pushed"] += len(payload.get("records", []))
            self._persist_trials(fresh)
        return MSG.ACK, {"new": len(fresh)}

    def _handle_record(self, payload: Dict) -> Tuple[int, Dict]:
        entry = entry_from_payload(payload["entry"])
        with self._lock:
            added = self.database.add(entry)
            self._counters["bests_recorded"] += 1
        return MSG.ACK, {"new": int(added)}

    def _handle_best(self, payload: Dict) -> Tuple[int, Dict]:
        with self._lock:
            entry = self.database.best(payload["task"], payload.get("target"))
        entries = [] if entry is None else [_entry_payload(entry)]
        return MSG.ENTRIES, {"entries": entries}

    def _handle_warm(self, payload: Dict) -> Tuple[int, Dict]:
        operator = payload["operator"]
        target = payload.get("target")
        with self._lock:
            self._counters["warm_requests"] += 1
            # Insertion (= recording) order, like iterating a local database.
            entries = [_entry_payload(e) for e in self.database
                       if e.operator == operator
                       and (target is None or e.target_name == target)]
        return MSG.ENTRIES, {"entries": entries}

    def _handle_model(self, payload: Dict) -> Tuple[int, Dict]:
        key = (payload["operator"], payload["target"])
        with self._lock:
            self._counters["model_requests"] += 1
            spec = self._models.get(key)
            if spec is not None:
                self._counters["model_hits"] += 1
        return MSG.MODEL_SPEC, {"model": spec}

    # ------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, int]:
        """Service counters (dedup hits, trials, records, connections...)."""
        with self._lock:
            return {**self._counters, "entries": len(self.database),
                    "trials_stored": len(self._trials),
                    "pretrained_models": len(self._models)}

    def __repr__(self) -> str:
        state = self.address if self.port is not None else "stopped"
        return (f"TuningService({state}, entries={len(self.database)}, "
                f"trials={len(self._trials)})")
