"""Deployable runtime: NDArray/devices, executors, artifacts, serving, RPC."""

from .artifact import ArtifactError, export_module, graph_from_json, graph_to_json, load_module
from .executor import ExecutionResult, Executor, InputSpec
from .graph_executor import GraphExecutor, create
from .ndarray import (DEVICE_TYPES, Context, Device, NDArray, array, cpu,
                      device, empty, gpu, mali, vdla)
from .procpool import (ModuleWorkerPool, PoolShutdownError, ProcPoolError,
                       ShmArena, WorkerCrash, WorkerError, WorkerPool,
                       leaked_segments)
from .framing import ProtocolError, TruncatedFrameError
from .rpc import RPCServer, RPCSession, Tracker, connect_tracker
from .serving import (DeadlineExceeded, InferenceEngine, InferenceFuture,
                      QueueFull, RequestCancelled, ServingError, serve)
from .traffic import (ReplayReport, Trace, TraceError, TraceReplayer,
                      TraceRequest, TraceSpec, load_trace)

#: ``repro.load`` — restore an exported module artifact without recompiling
load = load_module

__all__ = [
    "ArtifactError",
    "Context",
    "DEVICE_TYPES",
    "DeadlineExceeded",
    "Device",
    "ExecutionResult",
    "Executor",
    "GraphExecutor",
    "InferenceEngine",
    "InferenceFuture",
    "InputSpec",
    "ModuleWorkerPool",
    "NDArray",
    "PoolShutdownError",
    "ProcPoolError",
    "ProtocolError",
    "QueueFull",
    "RPCServer",
    "RPCSession",
    "ReplayReport",
    "RequestCancelled",
    "ServingError",
    "ShmArena",
    "Trace",
    "TraceError",
    "TraceReplayer",
    "TraceRequest",
    "TraceSpec",
    "Tracker",
    "TruncatedFrameError",
    "WorkerCrash",
    "WorkerError",
    "WorkerPool",
    "array",
    "connect_tracker",
    "cpu",
    "create",
    "device",
    "empty",
    "export_module",
    "gpu",
    "graph_from_json",
    "graph_to_json",
    "leaked_segments",
    "load",
    "load_module",
    "mali",
    "serve",
    "vdla",
]
