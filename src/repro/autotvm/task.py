"""Tuning tasks: a tensor operator workload + schedule template + target.

A :class:`Task` ties together a schedule template (a function that declares
knobs on a :class:`~repro.autotvm.space.ConfigSpace` and returns a schedule),
the workload arguments, and the hardware target whose simulated device will
measure candidate configurations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import te, tir
from ..hardware.target import Target
from .space import ConfigEntity, ConfigSpace

__all__ = ["Task", "create_task", "register_template", "get_template", "TEMPLATE_REGISTRY"]

#: Global registry of named schedule templates.
TEMPLATE_REGISTRY: Dict[str, Callable] = {}


def register_template(name: str, func: Optional[Callable] = None):
    """Register a schedule template under ``name`` (usable as a decorator)."""
    def _register(f: Callable) -> Callable:
        TEMPLATE_REGISTRY[name] = f
        return f

    if func is not None:
        return _register(func)
    return _register


def get_template(name: str) -> Callable:
    if name not in TEMPLATE_REGISTRY:
        raise KeyError(f"No schedule template registered under {name!r}")
    return TEMPLATE_REGISTRY[name]


class Task:
    """One operator-tuning problem."""

    def __init__(self, name: str, template: Callable, args: Tuple, target: Target):
        self.name = name
        self.template = template
        self.args = tuple(args)
        self.target = target
        self.config_space = ConfigSpace()
        # Execute the template once against the bare space so every knob is
        # registered with its candidates.
        self.template(self.config_space, *self.args)

    # ------------------------------------------------------------------ api
    @property
    def operator(self) -> str:
        """Operator family of the workload (``conv2d_(...)`` -> ``conv2d``)."""
        from .database import operator_of

        return operator_of(self.name)

    @property
    def flop(self) -> float:
        """Total floating point work of the default-schedule program."""
        func = self.lower(self.config_space.get(0))
        features = tir.extract_features(func)
        return features.total_flops

    def instantiate(self, config: ConfigEntity) -> Tuple[te.Schedule, List[te.Tensor]]:
        """Build the schedule described by ``config``."""
        return self.template(config, *self.args)

    def lower(self, config: ConfigEntity) -> tir.LoweredFunc:
        """Instantiate and lower one configuration."""
        schedule, tensors = self.instantiate(config)
        return tir.lower(schedule, tensors, name=f"{self.name}_c{config.index}")

    def __repr__(self) -> str:
        return (f"Task({self.name}, target={self.target.name}, "
                f"space={len(self.config_space)})")


def create_task(name: str, template: Callable, args: Sequence, target: Target) -> Task:
    """Create a tuning task from a template callable or registered name."""
    if isinstance(template, str):
        template = get_template(template)
    return Task(name, template, tuple(args), target)
