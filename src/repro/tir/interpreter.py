"""Functional interpreter for lowered loop programs.

Executes a :class:`~repro.tir.stmt.LoweredFunc` against NumPy arrays.  The
interpreter is the semantic reference used by the test-suite to check that
schedule transformations (splitting, reordering, caching, tensorization,
virtual threading) preserve the program's meaning — the paper's requirement
that schedule primitives "preserve the program's logical equivalence".

Performance is irrelevant here (the hardware models estimate cost
analytically); correctness on small shapes is what matters.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..te.expr import (
    MATH_INTRINSICS,
    Add,
    And,
    BinaryOp,
    Call,
    Cast,
    Div,
    EQ,
    Expr,
    FloatImm,
    FloorDiv,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mod,
    Mul,
    NE,
    Not,
    Or,
    Reduce,
    Select,
    StringImm,
    Sub,
    TensorRead,
    Var,
)
from ..te.tensor import ComputeOp, Tensor
from .stmt import (
    Allocate,
    AttrStmt,
    Barrier,
    Buffer,
    BufferLoad,
    BufferStore,
    DepPop,
    DepPush,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
)

__all__ = ["Interpreter", "run_lowered", "evaluate_expr"]

_NUMPY_DTYPES = {
    "float64": np.float64, "float32": np.float32, "float16": np.float16,
    "int64": np.int64, "int32": np.int32, "int16": np.int16, "int8": np.int8,
    "uint8": np.uint8, "bool": np.bool_,
    # sub-byte types are stored widened in the functional model
    "int4": np.int8, "int2": np.int8, "int1": np.int8,
}


def numpy_dtype(dtype: str) -> np.dtype:
    return np.dtype(_NUMPY_DTYPES.get(dtype, np.float32))


class EvalError(RuntimeError):
    """Raised when an expression or statement cannot be evaluated."""


_BINOP_EVAL = {
    Add: lambda a, b: a + b,
    Sub: lambda a, b: a - b,
    Mul: lambda a, b: a * b,
    Div: lambda a, b: a / b,
    FloorDiv: lambda a, b: a // b,
    Mod: lambda a, b: a % b,
    Min: min,
    Max: max,
    EQ: lambda a, b: a == b,
    NE: lambda a, b: a != b,
    LT: lambda a, b: a < b,
    LE: lambda a, b: a <= b,
    GT: lambda a, b: a > b,
    GE: lambda a, b: a >= b,
    And: lambda a, b: bool(a) and bool(b),
    Or: lambda a, b: bool(a) or bool(b),
}


def evaluate_expr(expr: Expr, env: Dict[Var, object],
                  buffers: Optional[Dict[str, np.ndarray]] = None) -> object:
    """Evaluate a scalar expression under a variable environment."""
    buffers = buffers or {}
    if isinstance(expr, Var):
        if expr not in env:
            raise EvalError(f"Unbound variable {expr}")
        return env[expr]
    if isinstance(expr, (IntImm, FloatImm)):
        return expr.value
    if isinstance(expr, StringImm):
        return expr.value
    if isinstance(expr, BinaryOp):
        a = evaluate_expr(expr.a, env, buffers)
        b = evaluate_expr(expr.b, env, buffers)
        result = _BINOP_EVAL[type(expr)](a, b)
        if isinstance(expr, (FloorDiv, Mod)) and isinstance(result, float):
            return int(result)
        return result
    if isinstance(expr, Not):
        return not bool(evaluate_expr(expr.a, env, buffers))
    if isinstance(expr, Select):
        cond = evaluate_expr(expr.condition, env, buffers)
        branch = expr.true_value if cond else expr.false_value
        return evaluate_expr(branch, env, buffers)
    if isinstance(expr, Cast):
        value = evaluate_expr(expr.value, env, buffers)
        if expr.dtype.startswith(("int", "uint")):
            return int(value)
        return float(value)
    if isinstance(expr, Call):
        args = [evaluate_expr(a, env, buffers) for a in expr.args]
        if expr.name in MATH_INTRINSICS:
            return MATH_INTRINSICS[expr.name](*args)
        raise EvalError(f"Unknown intrinsic call {expr.name}")
    if isinstance(expr, BufferLoad):
        array = buffers.get(expr.buffer.name)
        if array is None:
            raise EvalError(f"Buffer {expr.buffer.name} is not bound")
        idx = tuple(int(evaluate_expr(i, env, buffers)) for i in expr.indices)
        return array[idx]
    if isinstance(expr, TensorRead):
        tensor = expr.tensor
        name = getattr(tensor, "name", None)
        array = buffers.get(name)
        if array is None:
            raise EvalError(f"Tensor {name} has no bound array")
        idx = tuple(int(evaluate_expr(i, env, buffers)) for i in expr.indices)
        return array[idx]
    if isinstance(expr, Reduce):
        # Direct reduction evaluation (used when interpreting un-lowered
        # compute bodies, e.g. tensor intrinsic behaviours).
        acc = expr.identity
        axes = expr.axis

        def recurse(level: int) -> None:
            nonlocal acc
            if level == len(axes):
                acc = expr.combine(acc, evaluate_expr(expr.source, env, buffers))
                return
            ivar = axes[level]
            for value in range(ivar.extent_value()):
                env[ivar.var] = value
                recurse(level + 1)

        recurse(0)
        return acc
    raise EvalError(f"Cannot evaluate expression of type {type(expr).__name__}")


class Interpreter:
    """Executes lowered functions for functional verification."""

    def __init__(self, func: LoweredFunc):
        self.func = func

    def run(self, *arrays: np.ndarray) -> None:
        """Execute the function; ``arrays`` bind positionally to ``func.args``
        and are modified in place (outputs are written)."""
        if len(arrays) != len(self.func.args):
            raise ValueError(
                f"{self.func.name} expects {len(self.func.args)} arguments, "
                f"got {len(arrays)}")
        buffers: Dict[str, np.ndarray] = {}
        for buf, array in zip(self.func.args, arrays):
            if tuple(array.shape) != buf.shape:
                raise ValueError(
                    f"Argument {buf.name} expects shape {buf.shape}, got {array.shape}")
            buffers[buf.name] = array
        for alloc in self.func.allocations:
            buffers[alloc.name] = np.zeros(alloc.shape, dtype=numpy_dtype(alloc.dtype))
        self._exec(self.func.body, {}, buffers)

    # ------------------------------------------------------------------ exec
    def _exec(self, stmt: Stmt, env: Dict[Var, object],
              buffers: Dict[str, np.ndarray]) -> None:
        if isinstance(stmt, SeqStmt):
            for sub in stmt.stmts:
                self._exec(sub, env, buffers)
            return
        if isinstance(stmt, For):
            start = int(evaluate_expr(stmt.min, env, buffers))
            extent = int(evaluate_expr(stmt.extent, env, buffers))
            for value in range(start, start + extent):
                env[stmt.loop_var] = value
                self._exec(stmt.body, env, buffers)
            return
        if isinstance(stmt, IfThenElse):
            if evaluate_expr(stmt.condition, env, buffers):
                self._exec(stmt.then_body, env, buffers)
            elif stmt.else_body is not None:
                self._exec(stmt.else_body, env, buffers)
            return
        if isinstance(stmt, BufferStore):
            array = buffers.get(stmt.buffer.name)
            if array is None:
                array = np.zeros(stmt.buffer.shape, dtype=numpy_dtype(stmt.buffer.dtype))
                buffers[stmt.buffer.name] = array
            idx = tuple(int(evaluate_expr(i, env, buffers)) for i in stmt.indices)
            array[idx] = evaluate_expr(stmt.value, env, buffers)
            return
        if isinstance(stmt, Allocate):
            buffers.setdefault(
                stmt.buffer.name,
                np.zeros(stmt.buffer.shape, dtype=numpy_dtype(stmt.buffer.dtype)))
            self._exec(stmt.body, env, buffers)
            return
        if isinstance(stmt, AttrStmt):
            self._exec(stmt.body, env, buffers)
            return
        if isinstance(stmt, (Barrier, DepPush, DepPop)):
            return  # synchronisation has no functional effect in serial execution
        if isinstance(stmt, Evaluate):
            evaluate_expr(stmt.expr, env, buffers)
            return
        if isinstance(stmt, IntrinsicStmt):
            self._exec_intrinsic(stmt, env, buffers)
            return
        raise EvalError(f"Cannot execute statement {stmt!r}")

    def _exec_intrinsic(self, stmt: IntrinsicStmt, env: Dict[Var, object],
                        buffers: Dict[str, np.ndarray]) -> None:
        """Execute a tensorized region using the intrinsic's declared behaviour."""
        intrin = stmt.intrin
        op: ComputeOp = intrin.op
        out_shape = intrin.output_shape
        out_offset = [int(evaluate_expr(i, env, buffers)) for i in stmt.output_offset]
        out_array = buffers[stmt.output.name]

        # Bind the behaviour op's input placeholders to slices of the actual
        # input buffers at the computed offsets.
        local_buffers: Dict[str, np.ndarray] = {}
        for decl_input, buffer, offsets in zip(intrin.inputs, stmt.inputs,
                                               stmt.input_offsets):
            shape = decl_input.shape_values()
            start = [int(evaluate_expr(i, env, buffers)) for i in offsets]
            slices = tuple(slice(s, s + d) for s, d in zip(start, shape))
            local_buffers[decl_input.name] = buffers[buffer.name][slices]

        result = np.zeros(out_shape, dtype=out_array.dtype)
        local_env: Dict[Var, object] = {}

        def fill(level: int, idx: List[int]) -> None:
            if level == len(op.axis):
                value = evaluate_expr(op.body, dict(local_env), local_buffers)
                result[tuple(idx)] = value
                return
            for value in range(out_shape[level]):
                local_env[op.axis[level].var] = value
                fill(level + 1, idx + [value])

        fill(0, [])
        target = tuple(slice(o, o + d) for o, d in zip(out_offset, out_shape))
        if stmt.reduction_update:
            out_array[target] += result
        else:
            out_array[target] = result


def run_lowered(func: LoweredFunc, *arrays: np.ndarray) -> None:
    """Convenience wrapper: execute ``func`` over the given arrays in place."""
    Interpreter(func).run(*arrays)
