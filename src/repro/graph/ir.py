"""Computational graph IR (paper Section 3, Figure 3).

A :class:`Graph` is a topologically ordered list of :class:`Node` objects.
Each node is either an input/parameter (``op == "null"``) or an operator
application with attributes; edges carry multi-dimensional tensors whose
shapes are inferred statically (the paper exploits shape specificity of DL
workloads).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Node", "Graph"]


class Node:
    """One node in the computational graph."""

    def __init__(self, op: str, name: str, inputs: Optional[List["Node"]] = None,
                 attrs: Optional[Dict[str, object]] = None):
        self.op = op
        self.name = name
        self.inputs: List[Node] = list(inputs or [])
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.shape: Optional[Tuple[int, ...]] = None
        self.dtype: str = "float32"

    @property
    def is_variable(self) -> bool:
        return self.op == "null"

    def __repr__(self) -> str:
        ins = ", ".join(i.name for i in self.inputs)
        shape = f" {self.shape}" if self.shape is not None else ""
        return f"Node({self.name}: {self.op}({ins}){shape})"


class Graph:
    """A dataflow graph over tensors."""

    def __init__(self, outputs: Sequence[Node]):
        self.outputs = list(outputs)
        self.nodes = self._topological(self.outputs)

    @staticmethod
    def _topological(outputs: Sequence[Node]) -> List[Node]:
        order: List[Node] = []
        seen: set = set()

        def visit(node: Node) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node.inputs:
                visit(parent)
            order.append(node)

        for out in outputs:
            visit(out)
        return order

    # ------------------------------------------------------------------ queries
    @property
    def input_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_variable]

    @property
    def op_nodes(self) -> List[Node]:
        return [n for n in self.nodes if not n.is_variable]

    def consumers(self) -> Dict[int, List[Node]]:
        """Map of node id -> nodes that consume its output."""
        result: Dict[int, List[Node]] = {id(n): [] for n in self.nodes}
        for node in self.nodes:
            for parent in node.inputs:
                result[id(parent)].append(node)
        return result

    def find(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"No node named {name!r}")

    def refresh(self) -> None:
        """Recompute the topological order after a pass rewires nodes."""
        self.nodes = self._topological(self.outputs)

    # ------------------------------------------------------------------ shapes
    def infer_shapes(self, input_shapes: Dict[str, Tuple[int, ...]],
                     dtypes: Optional[Dict[str, str]] = None) -> None:
        """Propagate shapes through the graph using the operator registry."""
        from .ops import OP_REGISTRY

        dtypes = dtypes or {}
        for node in self.nodes:
            if node.is_variable:
                if node.shape is None:
                    if node.name not in input_shapes:
                        raise ValueError(f"Missing shape for graph input {node.name!r}")
                    node.shape = tuple(input_shapes[node.name])
                node.dtype = dtypes.get(node.name, node.dtype)
            else:
                spec = OP_REGISTRY.get(node.op)
                input_shapes_list = [tuple(p.shape) for p in node.inputs]
                node.shape = spec.infer_shape(input_shapes_list, node.attrs)
                node.dtype = node.attrs.get("out_dtype", node.inputs[0].dtype
                                            if node.inputs else "float32")

    # ------------------------------------------------------------------ display
    def summary(self) -> str:
        lines = [f"Graph with {len(self.nodes)} nodes "
                 f"({len(self.op_nodes)} operators)"]
        for node in self.nodes:
            if node.is_variable:
                lines.append(f"  input  {node.name}: {node.shape}")
            else:
                ins = ", ".join(p.name for p in node.inputs)
                lines.append(f"  {node.op:<22} {node.name}({ins}) -> {node.shape}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Graph(nodes={len(self.nodes)}, outputs={[o.name for o in self.outputs]})"
