"""Tests for the deterministic fault-injection subsystem (``repro.faults``)
and the hardening it forced: unified framing truncation accounting, worker
kill + respawn under the process pool, and the tuning-service client's
reconnect / circuit-breaker / graceful-degradation behaviour."""

import multiprocessing
import socket
import threading
import time

import numpy as np
import pytest

import repro
from repro.autotvm import LocalMeasurer, extract_tasks
from repro.autotvm.measure import MeasureInput
from repro.autotvm.service import (ServiceDedupMeasurer, TuningService,
                                   connect)
from repro.autotvm.service.client import ServiceUnavailable, _CircuitBreaker
from repro.autotvm.service.protocol import (MSG as SMSG,
                                            ServiceProtocolError)
from repro.autotvm.service.protocol import recv_frame, send_frame
from repro.faults import (FAULT_KINDS, FaultError, FaultPlan, FaultSpec,
                          active_plan, inject)
from repro.frontend import ModelBuilder
from repro.graph.ir import Graph, Node
from repro.graph.ops import OP_REGISTRY
from repro.hardware import cuda
from repro.runtime import ModuleWorkerPool, leaked_segments
from repro.runtime.artifact import export_module
from repro.runtime.framing import ProtocolError, TruncatedFrameError
from repro.runtime.procpool.protocol import MSG as PMSG
from repro.runtime.procpool.protocol import recv_msg, send_msg


def _small_cnn():
    b = ModelBuilder("small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


def conv_graph():
    data = Node("null", "data")
    data.shape = (1, 16, 16, 16)
    data.dtype = "float32"
    weight = Node("null", "weight")
    weight.shape = (16, 16, 3, 3)
    weight.dtype = "float32"
    conv = Node("conv2d", "conv", [data, weight],
                {"strides": 1, "padding": 1})
    conv.dtype = "float32"
    conv.shape = OP_REGISTRY["conv2d"].infer_shape(
        [data.shape, weight.shape], conv.attrs)
    return Graph([conv])


@pytest.fixture(scope="module")
def module():
    return repro.compile(_small_cnn(), target=cuda())


@pytest.fixture(scope="module")
def bundle(module, tmp_path_factory):
    path = tmp_path_factory.mktemp("faults") / "small.module"
    export_module(module, path)
    return str(path)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    assert active_plan() is None
    yield
    assert active_plan() is None, "a test leaked an installed FaultPlan"


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan semantics
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_unknown_kind_lists_known(self):
        with pytest.raises(FaultError, match="frame_drop"):
            FaultSpec("meteor_strike")

    def test_validation(self):
        with pytest.raises(FaultError, match="probability"):
            FaultSpec("frame_drop", probability=1.5)
        with pytest.raises(FaultError, match="after"):
            FaultSpec("frame_drop", after=-1)
        with pytest.raises(FaultError, match="max_count"):
            FaultSpec("frame_drop", max_count=-2)

    def test_action_carries_parameters(self):
        assert FaultSpec("frame_delay", delay_s=0.5).action() == {
            "action": "delay", "seconds": 0.5}
        assert FaultSpec("frame_truncate", truncate_bytes=7).action() == {
            "action": "truncate", "bytes": 7}
        assert FaultSpec("worker_kill").action() == {"action": "kill"}

    def test_every_kind_has_a_site(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind).site == FAULT_KINDS[kind][0]


class TestFaultPlan:
    CTX = dict(protocol="RPP1", kind=1, transport="pipe", size=10)

    def _fires(self, plan, n=40, site="framing.send", **ctx):
        context = dict(self.CTX, **ctx)
        with plan:
            return [inject(site, **context) is not None for _ in range(n)]

    def test_install_uninstall_and_context_manager(self):
        plan = FaultPlan([FaultSpec("frame_drop")], seed=1)
        assert inject("framing.send", **self.CTX) is None
        with plan:
            assert active_plan() is plan
            assert inject("framing.send", **self.CTX) == {"action": "drop"}
        assert active_plan() is None
        plan.uninstall()            # idempotent

    def test_plans_do_not_nest(self):
        with FaultPlan([FaultSpec("frame_drop")]):
            with pytest.raises(RuntimeError, match="already installed"):
                FaultPlan([FaultSpec("frame_drop")]).install()

    def test_probability_stream_is_deterministic(self):
        runs = [self._fires(FaultPlan(
            [FaultSpec("frame_drop", probability=0.3)], seed=42))
            for _ in range(2)]
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])
        # a different seed gives a different (but still ~30%) schedule
        other = self._fires(FaultPlan(
            [FaultSpec("frame_drop", probability=0.3)], seed=43))
        assert other != runs[0]

    def test_at_after_and_max_count(self):
        fired = self._fires(FaultPlan(
            [FaultSpec("frame_drop", at=[2, 5])], seed=0), n=8)
        assert fired == [i in (2, 5) for i in range(8)]
        fired = self._fires(FaultPlan(
            [FaultSpec("frame_drop", after=3, max_count=2)], seed=0), n=8)
        assert fired == [False, False, False, True, True,
                         False, False, False]

    def test_scoping_by_protocol_and_match(self):
        plan = FaultPlan([FaultSpec("frame_drop", protocol="RTS1")])
        with plan:
            assert inject("framing.send", **self.CTX) is None
            assert inject("framing.send", **dict(self.CTX,
                                                 protocol="RTS1")) is not None
        plan = FaultPlan([FaultSpec("worker_kill", match={"pool": "a"})])
        with plan:
            assert inject("procpool.dispatch", pool="b", index=0) is None
            assert inject("procpool.dispatch", pool="a", index=0) == {
                "action": "kill"}

    def test_stats_track_occurrences_and_injections(self):
        plan = FaultPlan([FaultSpec("frame_drop", at=[1])], seed=0)
        self._fires(plan, n=4)
        stats = plan.stats()
        spec_row, = stats["specs"]
        assert spec_row["occurrences"] == 4
        assert spec_row["injected"] == 1
        assert stats["total_injected"] == plan.total_injected() == 1


# ---------------------------------------------------------------------------
# Frame faults through the unified codec
# ---------------------------------------------------------------------------

class TestFrameFaults:
    def test_pipe_drop_delay_and_truncate(self):
        a, b = multiprocessing.Pipe()
        # A firing spec short-circuits the scan, so the truncate spec never
        # sees send #1: send #2 is *its* occurrence 0.
        plan = FaultPlan([FaultSpec("frame_drop", at=[0]),
                          FaultSpec("frame_truncate", at=[0])], seed=0)
        with plan:
            send_msg(a, PMSG.PING, {})          # dropped
            assert not b.poll(0.05)
            send_msg(a, PMSG.PING, {})          # torn
            with pytest.raises(TruncatedFrameError) as info:
                recv_msg(b)
            assert info.value.bytes_got < info.value.bytes_expected
            send_msg(a, PMSG.PING, {"n": 2})    # clean again
            assert recv_msg(b) == (PMSG.PING, {"n": 2})
        assert plan.total_injected() == 2
        a.close(), b.close()

    def test_pipe_reset_closes_and_raises(self):
        a, b = multiprocessing.Pipe()
        with FaultPlan([FaultSpec("socket_reset", at=[0])]):
            with pytest.raises(ConnectionResetError, match="fault injection"):
                send_msg(a, PMSG.PING, {})
        with pytest.raises(EOFError):
            b.recv_bytes()                      # peer sees a closed pipe
        b.close()

    def test_socket_truncate_breaks_both_ends_cleanly(self):
        a, b = socket.socketpair()
        try:
            with FaultPlan([FaultSpec("frame_truncate", protocol="RTS1",
                                      truncate_bytes=3)]):
                with pytest.raises(ConnectionResetError):
                    send_frame(a, SMSG.HELLO, {"pid": 1})
            # The peer got a torn frame: a ServiceProtocolError that is also
            # a ConnectionError, naming the exact byte accounting.
            with pytest.raises(ServiceProtocolError) as info:
                recv_frame(b)
            assert isinstance(info.value, TruncatedFrameError)
            assert isinstance(info.value, ConnectionError)
            assert info.value.bytes_got < info.value.bytes_expected
        finally:
            a.close()
            b.close()


class TestPartialReads:
    """Satellite: a peer dying mid-frame names bytes-expected/bytes-got."""

    def test_socket_header_truncation(self):
        a, b = socket.socketpair()
        a.sendall(b"RTS1\x01")                  # 5 of 9 header bytes
        a.close()
        with pytest.raises(ServiceProtocolError) as info:
            recv_frame(b)
        assert info.value.bytes_expected == 9
        assert info.value.bytes_got == 5
        b.close()

    def test_socket_payload_truncation(self):
        a, b = socket.socketpair()
        a.sendall(b"RTS1" + bytes([SMSG.HELLO]) +
                  (64).to_bytes(4, "big") + b"partial")
        a.close()
        with pytest.raises(ServiceProtocolError) as info:
            recv_frame(b)
        assert info.value.bytes_expected == 64
        assert info.value.bytes_got == len(b"partial")
        b.close()

    def test_pipe_short_frame(self):
        a, b = multiprocessing.Pipe()
        a.send_bytes(b"RPP1\x01")
        with pytest.raises(ProtocolError) as info:
            recv_msg(b)
        assert isinstance(info.value, TruncatedFrameError)
        assert info.value.bytes_expected == 9
        assert info.value.bytes_got == 5
        a.close(), b.close()


# ---------------------------------------------------------------------------
# Worker kill under the process pool
# ---------------------------------------------------------------------------

class TestWorkerKill:
    def test_killed_worker_respawns_and_batch_is_bit_identical(
            self, module, bundle):
        kind = module.target.device_type
        rng = np.random.default_rng(5)
        inputs = [rng.random((1, 3, 16, 16)).astype("float32")
                  for _ in range(3)]
        from repro.runtime import Executor

        expected = [Executor(module)(x)[0].asnumpy() for x in inputs]
        plan = FaultPlan([FaultSpec("worker_kill", at=[0],
                                    match={"pool": "repro-serve-pool"})])
        with ModuleWorkerPool(module, bundle, [f"{kind}:0"]) as pool:
            with plan:
                outcomes = pool.run_batch(0, [{"data": x} for x in inputs])
            for outcome, want in zip(outcomes, expected):
                np.testing.assert_array_equal(outcome[0], want)
            stats, = pool.stats()
            assert stats["respawns"] >= 1
            assert stats["retries"] >= 1
        assert plan.total_injected() == 1
        assert leaked_segments() == []


# ---------------------------------------------------------------------------
# Client resilience
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = _CircuitBreaker(threshold=2, reset_s=0.1)
        assert breaker.state() == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state() == "closed"
        breaker.record_failure()
        assert breaker.state() == "open" and not breaker.allow()
        assert breaker.opens == 1
        time.sleep(0.12)
        assert breaker.state() == "half-open" and breaker.allow()
        breaker.record_failure()                # failed probe re-opens
        assert breaker.state() == "open"
        time.sleep(0.12)
        breaker.record_success()
        assert breaker.state() == "closed" and breaker.allow()


class TestClientResilience:
    FAST = dict(timeout=5.0, rpc_timeout=5.0, backoff_s=0.01,
                backoff_max_s=0.05)

    def test_transient_connect_refused_is_retried(self):
        with TuningService() as service:
            plan = FaultPlan([FaultSpec("connect_refused", max_count=2)])
            with plan:
                with connect(service.address, connect_retries=3,
                             **self.FAST) as client:
                    assert client.stats()["connections"] >= 1
            assert plan.total_injected() == 2

    def test_connect_retries_exhausted_raise_service_unavailable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = "127.0.0.1:%d" % probe.getsockname()[1]
        probe.close()                           # nothing listens here now
        with pytest.raises(ServiceUnavailable, match="Cannot connect"):
            connect(dead_address, connect_retries=1, **self.FAST)

    def test_severed_connection_reconnects_transparently(self):
        with TuningService() as service:
            with connect(service.address, **self.FAST) as client:
                client._sock.shutdown(socket.SHUT_RDWR)   # sever mid-life
                assert client.stats()["connections"] >= 1  # reconnected RPC
                assert client.reconnects == 1
                assert client.client_stats()["rpc_failures"] >= 1

    def test_slow_service_hits_rpc_timeout_then_recovers(self):
        with TuningService() as service:
            with connect(service.address, rpc_timeout=0.2, rpc_retries=2,
                         backoff_s=0.01, backoff_max_s=0.05) as client:
                plan = FaultPlan([FaultSpec("slow_response", delay_s=1.0,
                                            max_count=1)])
                with plan:
                    stats = client.stats()      # first attempt stalls 1s
                assert plan.total_injected() == 1
                assert stats["trials_stored"] == 0
                assert client.rpc_failures >= 1

    def test_dead_service_opens_breaker_and_fails_fast(self):
        service = TuningService().start()
        client = connect(service.address, connect_retries=0, rpc_retries=0,
                         breaker_threshold=2, breaker_reset_s=30.0,
                         **{k: v for k, v in self.FAST.items()
                            if k != "timeout"}, timeout=0.5)
        service.stop()
        for _ in range(2):
            with pytest.raises(ServiceUnavailable):
                client.stats()
        assert client.breaker_state() == "open"
        start = time.monotonic()
        with pytest.raises(ServiceUnavailable, match="breaker"):
            client.stats()
        assert time.monotonic() - start < 0.1   # fast-fail: no socket work
        client.close()


class TestGracefulDegradation:
    def test_dedup_measurer_degrades_to_local_measurement(self):
        task, = extract_tasks(conv_graph(), cuda())
        inputs = [MeasureInput(task, task.config_space.get(i))
                  for i in range(4)]
        pure_local = LocalMeasurer(number=2, seed=0).measure(inputs)

        service = TuningService().start()
        client = connect(service.address, connect_retries=0, rpc_retries=0,
                         backoff_s=0.01, backoff_max_s=0.02, timeout=0.5)
        measurer = ServiceDedupMeasurer(LocalMeasurer(number=2, seed=0),
                                        client)
        service.stop()                          # dies mid-run
        results = measurer.measure(inputs)      # must not raise
        assert measurer.service_failures >= 1
        assert measurer.local_fallbacks == len(inputs)
        assert measurer.dedup_hits == 0
        # bit-identical to never having had a service at all
        assert [r.mean_time for r in results] == \
            [r.mean_time for r in pure_local]
        client.close()
