"""Schedules and schedule primitives (Section 4 of the paper).

A :class:`Schedule` owns one :class:`Stage` per operation in the dataflow
graph rooted at the output tensors.  Stages are transformed incrementally by
schedule primitives — ``split``, ``tile``, ``reorder``, ``fuse``, ``bind``,
``compute_at``, ``cache_read``, ``cache_write``, ``set_scope``,
``vectorize``, ``unroll``, ``parallel``, ``pragma``, ``tensorize`` and
virtual threading — each of which preserves the program's logical semantics
while changing the loop structure that lowering will generate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .expr import (
    Expr,
    ExprMutator,
    IntImm,
    Range,
    Reduce,
    TensorRead,
    Var,
    as_expr,
    simplify,
)
from .intrin import TensorIntrin
from .tensor import ComputeOp, IterVar, IterVarType, Operation, PlaceholderOp, Tensor

__all__ = [
    "Schedule",
    "Stage",
    "SplitRelation",
    "FuseRelation",
    "create_schedule",
    "MEMORY_SCOPES",
]

#: Memory scopes understood by the lowering pipeline and hardware models.
#: ``global`` is off-chip memory; ``shared`` is the GPU cooperative scope;
#: ``local`` is per-thread registers; the remaining scopes model the VDLA
#: accelerator's specialised on-chip buffers (Section 6.4).
MEMORY_SCOPES = (
    "global",
    "shared",
    "local",
    "warp",
    "acc_buffer",
    "inp_buffer",
    "wgt_buffer",
)


class SplitRelation:
    """Records ``parent -> (outer, inner)`` loop splitting."""

    def __init__(self, parent: IterVar, outer: IterVar, inner: IterVar, factor: int):
        self.parent = parent
        self.outer = outer
        self.inner = inner
        self.factor = factor

    def __repr__(self) -> str:
        return f"split({self.parent.name} -> {self.outer.name}, {self.inner.name}, factor={self.factor})"


class FuseRelation:
    """Records ``(outer, inner) -> fused`` loop fusion."""

    def __init__(self, outer: IterVar, inner: IterVar, fused: IterVar, inner_extent: int):
        self.outer = outer
        self.inner = inner
        self.fused = fused
        self.inner_extent = inner_extent

    def __repr__(self) -> str:
        return f"fuse({self.outer.name}, {self.inner.name} -> {self.fused.name})"


class Stage:
    """Schedule state for one operation."""

    def __init__(self, op: Operation, schedule: "Schedule"):
        self.op = op
        self.schedule = schedule
        self.relations: List[object] = []
        self.iter_var_attrs: Dict[IterVar, Dict[str, object]] = {}
        self.attach_type = "root"  # root | inline | scope
        self.attach_stage: Optional["Stage"] = None
        self.attach_ivar: Optional[IterVar] = None
        self.scope = "global"
        self.double_buffer = False
        self.store_predicate: Optional[Expr] = None
        self.tensorize_map: Dict[IterVar, TensorIntrin] = {}
        self.pragmas: Dict[IterVar, List[Tuple[str, object]]] = {}
        self.is_output = False
        if isinstance(op, ComputeOp):
            self.leaf_iter_vars: List[IterVar] = list(op.axis) + list(op.reduce_axis)
            self.all_iter_vars: List[IterVar] = list(self.leaf_iter_vars)
        else:
            self.leaf_iter_vars = []
            self.all_iter_vars = []

    # -- introspection -------------------------------------------------------
    @property
    def name(self) -> str:
        return self.op.name

    def __repr__(self) -> str:
        leaves = ", ".join(iv.name for iv in self.leaf_iter_vars)
        return f"Stage({self.name}: [{leaves}], scope={self.scope})"

    def _attrs(self, ivar: IterVar) -> Dict[str, object]:
        return self.iter_var_attrs.setdefault(ivar, {})

    def _check_leaf(self, ivar: IterVar) -> None:
        if ivar not in self.leaf_iter_vars:
            raise ValueError(f"{ivar!r} is not a leaf iter var of stage {self.name}")

    # -- loop structure primitives --------------------------------------------
    def split(self, ivar: IterVar, factor: Optional[int] = None,
              nparts: Optional[int] = None) -> Tuple[IterVar, IterVar]:
        """Split ``ivar`` into an outer/inner pair by ``factor`` or ``nparts``."""
        self._check_leaf(ivar)
        extent = ivar.extent_value()
        if factor is None and nparts is None:
            raise ValueError("split requires either factor or nparts")
        if factor is None:
            factor = max(1, math.ceil(extent / nparts))
        factor = int(factor)
        if factor <= 0:
            raise ValueError("split factor must be positive")
        outer_extent = math.ceil(extent / factor)
        outer = IterVar(Range.from_extent(outer_extent), f"{ivar.name}.outer", ivar.iter_type)
        inner = IterVar(Range.from_extent(factor), f"{ivar.name}.inner", ivar.iter_type)
        relation = SplitRelation(ivar, outer, inner, factor)
        self.relations.append(relation)
        idx = self.leaf_iter_vars.index(ivar)
        self.leaf_iter_vars[idx:idx + 1] = [outer, inner]
        self.all_iter_vars.extend([outer, inner])
        return outer, inner

    def tile(self, x: IterVar, y: IterVar, x_factor: int,
             y_factor: int) -> Tuple[IterVar, IterVar, IterVar, IterVar]:
        """Two-dimensional tiling; returns ``(xo, yo, xi, yi)``."""
        xo, xi = self.split(x, factor=x_factor)
        yo, yi = self.split(y, factor=y_factor)
        self.reorder(xo, yo, xi, yi)
        return xo, yo, xi, yi

    def fuse(self, outer: IterVar, inner: IterVar) -> IterVar:
        """Fuse two adjacent loops into one."""
        self._check_leaf(outer)
        self._check_leaf(inner)
        o_idx = self.leaf_iter_vars.index(outer)
        i_idx = self.leaf_iter_vars.index(inner)
        if i_idx != o_idx + 1:
            raise ValueError("fuse requires the two loops to be adjacent (outer then inner)")
        inner_extent = inner.extent_value()
        fused_extent = outer.extent_value() * inner_extent
        fused = IterVar(Range.from_extent(fused_extent),
                        f"{outer.name}.{inner.name}.fused", outer.iter_type)
        self.relations.append(FuseRelation(outer, inner, fused, inner_extent))
        self.leaf_iter_vars[o_idx:i_idx + 1] = [fused]
        self.all_iter_vars.append(fused)
        return fused

    def reorder(self, *ivars: IterVar) -> None:
        """Reorder the listed loops (others keep their relative position)."""
        for ivar in ivars:
            self._check_leaf(ivar)
        positions = sorted(self.leaf_iter_vars.index(iv) for iv in ivars)
        for pos, ivar in zip(positions, ivars):
            self.leaf_iter_vars[pos] = ivar

    # -- annotations -----------------------------------------------------------
    def vectorize(self, ivar: IterVar) -> None:
        self._check_leaf(ivar)
        self._attrs(ivar)["annotation"] = "vectorize"

    def unroll(self, ivar: IterVar) -> None:
        self._check_leaf(ivar)
        self._attrs(ivar)["annotation"] = "unroll"

    def parallel(self, ivar: IterVar) -> None:
        self._check_leaf(ivar)
        self._attrs(ivar)["annotation"] = "parallel"

    def bind(self, ivar: IterVar, thread_ivar: IterVar) -> None:
        """Bind a loop to a hardware thread index (or virtual thread)."""
        self._check_leaf(ivar)
        attrs = self._attrs(ivar)
        attrs["bind_thread"] = thread_ivar
        if thread_ivar.iter_type == IterVarType.VIRTUAL_THREAD:
            attrs["annotation"] = "vthread"
        else:
            attrs["annotation"] = "thread_binding"

    def pragma(self, ivar: IterVar, key: str, value: object = True) -> None:
        self._check_leaf(ivar)
        self.pragmas.setdefault(ivar, []).append((key, value))

    def set_store_predicate(self, predicate: Expr) -> None:
        self.store_predicate = predicate

    def set_scope(self, scope: str) -> None:
        if scope not in MEMORY_SCOPES:
            raise ValueError(f"Unknown memory scope {scope!r}; expected one of {MEMORY_SCOPES}")
        self.scope = scope

    def double_buffer_on(self) -> None:
        self.double_buffer = True

    def tensorize(self, ivar: IterVar, intrin: TensorIntrin) -> None:
        """Replace the loop nest rooted at ``ivar`` with a hardware intrinsic."""
        self._check_leaf(ivar)
        self.tensorize_map[ivar] = intrin
        self._attrs(ivar)["annotation"] = "tensorize"

    # -- compute placement -----------------------------------------------------
    def compute_at(self, parent: "Stage", ivar: IterVar) -> None:
        """Attach this stage's computation inside ``parent`` at loop ``ivar``."""
        parent._check_leaf(ivar)
        self.attach_type = "scope"
        self.attach_stage = parent
        self.attach_ivar = ivar

    def compute_inline(self) -> None:
        """Inline this stage into its consumers (no separate buffer)."""
        self.attach_type = "inline"

    def compute_root(self) -> None:
        self.attach_type = "root"
        self.attach_stage = None
        self.attach_ivar = None

    # -- queries used by lowering ----------------------------------------------
    def annotation_of(self, ivar: IterVar) -> Optional[str]:
        return self.iter_var_attrs.get(ivar, {}).get("annotation")

    def bound_thread(self, ivar: IterVar) -> Optional[IterVar]:
        return self.iter_var_attrs.get(ivar, {}).get("bind_thread")

    def leaf_extent(self, ivar: IterVar) -> int:
        return ivar.extent_value()


class _ReaderRewriter(ExprMutator):
    """Rewrite reads of ``old`` tensor to reads of ``new`` tensor."""

    def __init__(self, old: Tensor, new: Tensor):
        self.old = old
        self.new = new

    def visit_tensorread(self, expr: TensorRead) -> Expr:
        indices = [self.visit(i) for i in expr.indices]
        if isinstance(expr.tensor, Tensor) and expr.tensor == self.old:
            return TensorRead(self.new, indices)
        if all(n is o for n, o in zip(indices, expr.indices)):
            return expr
        return TensorRead(expr.tensor, indices)


class Schedule:
    """A schedule over the dataflow graph rooted at ``outputs``."""

    def __init__(self, outputs: Sequence[Operation]):
        self.outputs = list(outputs)
        self.stage_map: Dict[Operation, Stage] = {}
        self.stage_order: List[Stage] = []
        for op in _topo_order(self.outputs):
            stage = Stage(op, self)
            if op in self.outputs:
                stage.is_output = True
            self.stage_map[op] = stage
            self.stage_order.append(stage)

    # -- access ----------------------------------------------------------------
    def __getitem__(self, key: Union[Operation, Tensor]) -> Stage:
        op = key.op if isinstance(key, Tensor) else key
        if op not in self.stage_map:
            raise KeyError(f"Operation {op} is not part of this schedule")
        return self.stage_map[op]

    @property
    def stages(self) -> List[Stage]:
        return list(self.stage_order)

    # -- cache stages ------------------------------------------------------------
    def cache_read(self, tensor: Tensor, scope: str,
                   readers: Sequence[Union[Tensor, Operation]]) -> Tensor:
        """Create a cached copy of ``tensor`` in ``scope`` read by ``readers``.

        The cache stage copies the tensor element-by-element; the reader
        operations are rewritten to read from the cache.  The returned tensor
        can then be scheduled (typically ``compute_at`` a consumer loop).
        """
        axis = [IterVar(Range.from_extent(dim), f"ax{idx}")
                for idx, dim in enumerate(tensor.shape)]
        body = TensorRead(tensor, [iv.var for iv in axis])
        cache_op = ComputeOp(f"{tensor.name}.{scope}", axis, body, tensor.shape, tensor.dtype)
        cache_tensor = cache_op.output(0)

        reader_ops = [r.op if isinstance(r, Tensor) else r for r in readers]
        rewriter = _ReaderRewriter(tensor, cache_tensor)
        insert_at = len(self.stage_order)
        for reader_op in reader_ops:
            if not isinstance(reader_op, ComputeOp):
                raise TypeError("cache_read readers must be compute operations")
            reader_op.body = rewriter.visit(reader_op.body)
            insert_at = min(insert_at, self.stage_order.index(self.stage_map[reader_op]))

        stage = Stage(cache_op, self)
        stage.scope = scope
        self.stage_map[cache_op] = stage
        self.stage_order.insert(insert_at, stage)
        return cache_tensor

    def cache_write(self, tensor: Tensor, scope: str) -> Tensor:
        """Compute ``tensor`` into a cache buffer in ``scope``, then copy out.

        Returns the cache tensor holding the original computation; the
        original stage becomes a copy from the cache to the output buffer.
        """
        op = tensor.op
        if not isinstance(op, ComputeOp):
            raise TypeError("cache_write expects a compute tensor")
        cache_op = ComputeOp(f"{op.name}.{scope}", list(op.axis), op.body,
                             op.shape, op.dtype)
        cache_tensor = cache_op.output(0)

        # The original op becomes a simple copy from the cache with fresh axes.
        new_axis = [IterVar(Range.from_extent(dim), f"c{idx}")
                    for idx, dim in enumerate(op.shape)]
        op.axis = new_axis
        op.body = TensorRead(cache_tensor, [iv.var for iv in new_axis])

        original_stage = self.stage_map[op]
        original_stage.leaf_iter_vars = list(new_axis)
        original_stage.all_iter_vars = list(new_axis)
        original_stage.relations = []
        original_stage.iter_var_attrs = {}

        cache_stage = Stage(cache_op, self)
        cache_stage.scope = scope
        self.stage_map[cache_op] = cache_stage
        index = self.stage_order.index(original_stage)
        self.stage_order.insert(index, cache_stage)
        return cache_tensor

    # -- convenience --------------------------------------------------------------
    def normalize(self) -> "Schedule":
        """Present for API parity with the paper's stack; schedules here are
        always kept in a normalised form."""
        return self

    def __repr__(self) -> str:
        lines = [f"Schedule({len(self.stage_order)} stages)"]
        for stage in self.stage_order:
            lines.append(f"  {stage!r}")
        return "\n".join(lines)


def _topo_order(outputs: Sequence[Operation]) -> List[Operation]:
    """Topological order (producers first) of the ops feeding ``outputs``."""
    order: List[Operation] = []
    visited: Dict[int, bool] = {}

    def visit(op: Operation) -> None:
        if id(op) in visited:
            return
        visited[id(op)] = True
        for tensor in op.input_tensors():
            visit(tensor.op)
        order.append(op)

    for op in outputs:
        visit(op)
    return order


def create_schedule(ops: Union[Operation, Tensor, Sequence[Union[Operation, Tensor]]]) -> Schedule:
    """Create a schedule for the given output operation(s)."""
    if isinstance(ops, (Operation, Tensor)):
        ops = [ops]
    normalized = [o.op if isinstance(o, Tensor) else o for o in ops]
    return Schedule(normalized)
