"""Tests for repro.serve(): dynamic batching, the device pool, simulated
latency accounting, and the RPC tracker paths it leans on (satellite #3)."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.frontend import ModelBuilder
from repro.hardware import cuda
from repro.runtime import (DeadlineExceeded, Executor, QueueFull,
                           RequestCancelled, RPCServer, ServingError, Tracker)
from repro.runtime.serving import _AdmissionQueue, _Request


def _small_cnn():
    b = ModelBuilder("small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


@pytest.fixture(scope="module")
def module():
    return repro.compile(_small_cnn(), target=cuda())


@pytest.fixture(scope="module")
def requests_and_expected(module):
    rng = np.random.default_rng(5)
    inputs = [rng.random((1, 3, 16, 16)).astype("float32") for _ in range(8)]
    solo = Executor(module)
    expected = [solo(x)[0].asnumpy() for x in inputs]
    return inputs, expected


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------

class TestInferenceEngine:
    def test_outputs_bit_identical_to_solo_execution(self, module,
                                                     requests_and_expected):
        inputs, expected = requests_and_expected
        with repro.serve(module, max_batch=4, timeout_ms=200) as engine:
            results = engine.infer_many([{"data": x} for x in inputs],
                                        timeout=30)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got[0], want)

    def test_dynamic_batching_coalesces(self, module, requests_and_expected):
        inputs, _ = requests_and_expected
        engine = repro.serve(module, max_batch=4, timeout_ms=500)
        futures = [engine.submit(data=x) for x in inputs]
        for future in futures:
            future.result(30)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == len(inputs)
        assert stats["batches"] < len(inputs)
        assert stats["mean_batch_occupancy"] > 1.0
        assert sum(size * count for size, count
                   in stats["batch_occupancy"].items()) == len(inputs)

    def test_batched_time_is_per_batch_estimate_not_per_request_sum(self, module):
        engine = repro.serve(module, max_batch=4, timeout_ms=500)
        try:
            single = module.total_time
            batched = engine.estimated_batch_time(4)
            # The coalesced batch costs the batch-4 kernel estimates: more
            # than one request, far less than four independent requests.
            assert single < batched < 4 * single
            futures = [engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
                       for _ in range(4)]
            for future in futures:
                future.result(30)
            full = [f for f in futures if f.batch_size == 4]
            assert full, "expected at least one coalesced batch of 4"
            for future in full:
                assert future.simulated_latency == pytest.approx(batched)
        finally:
            engine.shutdown()
        stats = engine.stats()
        sim = stats["simulated"]
        assert sim["makespan_seconds"] < 4 * single
        assert sim["throughput_rps"] > 1.0 / single

    def test_max_batch_one_matches_sequential_accounting(self, module):
        with repro.serve(module, max_batch=1) as engine:
            future = engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
            future.result(30)
            assert future.batch_size == 1
            assert future.simulated_latency == pytest.approx(module.total_time)

    def test_round_robin_across_devices(self, module, requests_and_expected):
        inputs, _ = requests_and_expected
        engine = repro.serve(module, devices=["gpu:0", "gpu:1"],
                             max_batch=4, timeout_ms=500)
        engine.infer_many([{"data": x} for x in inputs], timeout=30)
        engine.shutdown()
        stats = engine.stats()
        busy = stats["simulated"]["busy_seconds_per_device"]
        assert set(busy) == {"gpu:0", "gpu:1"}
        assert all(seconds > 0 for seconds in busy.values())
        # Two batches in parallel: the makespan is the busiest device, not
        # the sum over devices.
        assert stats["simulated"]["makespan_seconds"] == pytest.approx(
            max(busy.values()))

    def test_serve_from_artifact_path(self, module, tmp_path,
                                      requests_and_expected):
        inputs, expected = requests_and_expected
        path = tmp_path / "served.repro"
        module.export(path)
        with repro.serve(str(path), max_batch=2, timeout_ms=50) as engine:
            result = engine.infer(data=inputs[0], timeout=30)
        np.testing.assert_array_equal(result[0], expected[0])

    def test_submit_after_shutdown_raises(self, module):
        engine = repro.serve(module, max_batch=2)
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))

    def test_bad_request_shapes_fail_fast(self, module):
        with repro.serve(module, max_batch=2) as engine:
            with pytest.raises(ValueError, match="native-batch"):
                engine.submit(data=np.zeros((2, 3, 16, 16), "float32"))
            with pytest.raises(ValueError, match="data"):
                engine.submit(wrong=np.zeros((1, 3, 16, 16), "float32"))

    def test_submit_copies_inputs(self, module):
        # A client reusing its input buffer must not corrupt in-flight
        # requests: the engine snapshots inputs at submit time.
        rng = np.random.default_rng(9)
        first = rng.random((1, 3, 16, 16)).astype("float32")
        second = rng.random((1, 3, 16, 16)).astype("float32")
        expected = Executor(module)(first)[0].asnumpy()
        buffer = first.copy()
        with repro.serve(module, max_batch=4, timeout_ms=200) as engine:
            future = engine.submit(data=buffer)
            buffer[...] = second
            got = future.result(30)
        np.testing.assert_array_equal(got[0], expected)

    def test_async_shutdown_still_serves_queued_requests(self, module):
        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=1)
        engine = repro.serve(module, max_batch=2, timeout_ms=50,
                             tracker=tracker, rpc_key="titan-x")
        futures = [engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
                   for _ in range(4)]
        engine.shutdown(wait=False)
        # Queued requests still resolve, and the worker releases its lease
        # only after it has drained them.
        for future in futures:
            assert len(future.result(30)) == 1
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if tracker.summary()["titan-x"]["free"] == 1:
                break
            time.sleep(0.01)
        assert tracker.summary()["titan-x"]["free"] == 1

    def test_engine_validates_knobs(self, module):
        with pytest.raises(ValueError, match="max_batch"):
            repro.serve(module, max_batch=0)
        with pytest.raises(ValueError, match="devices"):
            repro.serve(module, devices=0)


# ---------------------------------------------------------------------------
# Tracker-backed serving
# ---------------------------------------------------------------------------

class TestTrackerServing:
    def test_leases_counted_and_released_on_shutdown(self, module,
                                                     requests_and_expected):
        inputs, expected = requests_and_expected
        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=2)
        engine = repro.serve(module, devices=2, max_batch=4, timeout_ms=500,
                             tracker=tracker, rpc_key="titan-x")
        during = tracker.summary()["titan-x"]
        assert during["free"] == 0  # both devices exclusively leased
        results = engine.infer_many([{"data": x} for x in inputs], timeout=30)
        engine.shutdown()
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got[0], want)
        summary = tracker.summary()["titan-x"]
        assert summary["total"] == 2
        assert summary["free"] == 2  # released back to the pool
        assert summary["requests"] == engine.stats()["batches"]

    def test_pool_exhaustion_fails_and_releases_partial_leases(self, module):
        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=1)
        with pytest.raises(TimeoutError):
            repro.serve(module, devices=2, tracker=tracker, rpc_key="titan-x")
        # the one successful lease must have been released again
        assert tracker.summary()["titan-x"]["free"] == 1

    def test_tracker_requires_key(self, module):
        with pytest.raises(ValueError, match="rpc_key"):
            repro.serve(module, tracker=Tracker())

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_lease_released_when_worker_dies_mid_request(self, module):
        # The worker thread owns its lease; even a BaseException that kills
        # the thread mid-request must release it back to the pool (and
        # reject the in-flight future rather than hang the caller).
        class _WorkerThreadDeath(BaseException):
            pass

        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=1)
        engine = repro.serve(module, max_batch=1, tracker=tracker,
                             rpc_key="titan-x")
        assert tracker.summary()["titan-x"]["free"] == 0

        def boom(inputs):
            raise _WorkerThreadDeath("simulated executor death")

        engine._executors[0]._execute = boom
        future = engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
        with pytest.raises(_WorkerThreadDeath):
            future.result(30)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if tracker.summary()["titan-x"]["free"] == 1:
                break
            time.sleep(0.01)
        assert tracker.summary()["titan-x"]["free"] == 1
        assert 0 in engine._dead_workers
        engine.shutdown()


# ---------------------------------------------------------------------------
# rpc.Tracker.request paths (satellite #3)
# ---------------------------------------------------------------------------

class TestTrackerRequest:
    def test_timeout_on_exhausted_pool(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        session = tracker.request("board")
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="board"):
            tracker.request("board", timeout=0.05)
        assert time.monotonic() - start < 5.0
        session.release()

    def test_unknown_key_lists_known(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model)
        with pytest.raises(KeyError, match="board"):
            tracker.request("nonexistent")

    def test_release_notifies_blocked_request(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        first = tracker.request("board")
        acquired = []

        def blocked():
            session = tracker.request("board", timeout=10.0)
            acquired.append(session)
            session.release()

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.05)
        assert not acquired  # still blocked while the lease is held
        first.release()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert len(acquired) == 1
        assert tracker.summary()["board"]["free"] == 1

    def test_double_release_is_idempotent(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        session = tracker.request("board")
        session.release()
        session.release()
        assert tracker.summary()["board"]["free"] == 1

    def test_execute_counts_and_refuses_after_release(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        session = tracker.request("board")
        assert session.execute(lambda a, b: a + b, 2, 3) == 5
        session.release()
        with pytest.raises(RuntimeError, match="released"):
            session.execute(lambda: None)
        assert tracker.summary()["board"]["requests"] == 1


# ---------------------------------------------------------------------------
# SLO machinery: deadlines, priorities, shedding, cancellation
# ---------------------------------------------------------------------------

def _gated_engine(module, **kwargs):
    """An engine whose single executor blocks on ``gate``; ``entered`` is
    set the moment a batch reaches execution (i.e. after it was claimed)."""
    engine = repro.serve(module, **kwargs)
    gate = threading.Event()
    entered = threading.Event()
    original = engine._executors[0]._execute

    def gated(inputs):
        entered.set()
        gate.wait(30)
        return original(inputs)

    engine._executors[0]._execute = gated
    return engine, gate, entered


class TestSLO:
    X = np.zeros((1, 3, 16, 16), "float32")

    def test_knob_validation(self, module):
        with pytest.raises(ValueError, match="max_queue"):
            repro.serve(module, max_queue=0)
        with repro.serve(module, max_batch=1) as engine:
            with pytest.raises(ValueError, match="deadline_ms"):
                engine.submit(data=self.X, deadline_ms=0)

    def test_deadline_expired_in_window_is_shed(self, module):
        # A 400ms coalescing window outlives a 50ms deadline: the expired
        # request is shed before execution, its batchmate is unaffected.
        engine = repro.serve(module, max_batch=8, timeout_ms=400)
        keep = engine.submit(data=self.X)
        drop = engine.submit(data=self.X, deadline_ms=50)
        assert len(keep.result(30)) == 1
        with pytest.raises(DeadlineExceeded, match="shed, not executed"):
            drop.result(30)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == 1
        assert stats["slo"]["shed_expired"] == 1
        assert stats["slo"]["shed_total"] == 1

    def test_result_timeout_then_cancel_skips_execution(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        try:
            first = engine.submit(data=self.X)
            assert entered.wait(10)
            second = engine.submit(data=self.X)   # queued behind the gate
            with pytest.raises(TimeoutError):
                second.result(0.05)
            assert second.cancel() is True
            assert second.cancel() is True        # idempotent
            assert second.cancelled()
        finally:
            gate.set()
        assert len(first.result(30)) == 1
        assert first.cancel() is False            # too late: already done
        with pytest.raises(RequestCancelled):
            second.result(30)
        engine.shutdown()
        stats = engine.stats()
        # The cancelled request was never executed and never counted.
        assert stats["requests"] == 1
        assert stats["slo"]["cancelled"] == 1

    def test_cancel_in_window_never_dispatches(self, module):
        engine = repro.serve(module, max_batch=8, timeout_ms=500)
        future = engine.submit(data=self.X)
        time.sleep(0.05)          # let the batcher pop it into the window
        assert future.cancel() is True
        with pytest.raises(RequestCancelled):
            future.result(5)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == 0
        assert stats["batches"] == 0
        assert stats["slo"]["cancelled"] == 1

    def test_queue_full_sheds_lowest_priority_newest(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1, max_queue=2)
        futures, full_raises = [], 0
        try:
            futures.append(engine.submit(data=self.X))
            assert entered.wait(10)
            # Saturate the pipeline (1 executing + bounded worker queue +
            # the batcher's blocked dispatch) and then the admission queue.
            # Among equal priorities the *incoming* request is always the
            # shed victim, so queued futures are never evicted here.
            for _ in range(100):
                try:
                    futures.append(engine.submit(data=self.X))
                except QueueFull:
                    full_raises += 1
                if full_raises >= 3 \
                        and engine.stats()["slo"]["queue_depth"] == 2:
                    break
            assert full_raises >= 3
            assert engine.stats()["slo"]["queue_depth"] == 2
            # A high-priority arrival is admitted by evicting the newest
            # queued low-priority request.
            vip = engine.submit(data=self.X, priority=10)
        finally:
            gate.set()
        assert len(vip.result(30)) == 1
        served, shed = 0, 0
        for future in futures:
            try:
                future.result(30)
                served += 1
            except QueueFull:
                shed += 1
        assert shed == 1                  # exactly the future vip evicted
        assert served == len(futures) - 1
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == served + 1
        assert stats["slo"]["shed_queue_full"] == full_raises + 1

    def test_late_completion_counts_deadline_violation(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        try:
            future = engine.submit(data=self.X, deadline_ms=150)
            assert entered.wait(10)       # claimed before the deadline
            time.sleep(0.3)               # ... but finishes after it
        finally:
            gate.set()
        assert len(future.result(30)) == 1    # late work still delivered
        engine.shutdown()
        slo = engine.stats()["slo"]
        assert slo["deadline_violations"] == 1
        assert slo["shed_expired"] == 0

    def test_shutdown_drain_false_rejects_backlog(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        futures = [engine.submit(data=self.X) for _ in range(8)]
        assert entered.wait(10)
        engine.shutdown(wait=False, drain=False)
        gate.set()
        served, rejected = 0, 0
        for future in futures:
            try:
                future.result(30)
                served += 1
            except ServingError:
                rejected += 1
        assert served >= 1                # in-flight batches still finish
        assert rejected >= 1              # the backlog is rejected, not hung
        engine._batcher.join(10)
        assert not engine._batcher.is_alive()

    def test_admission_queue_orders_and_sheds(self):
        q = _AdmissionQueue(3)
        low_old = _Request({}, priority=0)
        high = _Request({}, priority=5)
        low_new = _Request({}, priority=0)
        for request in (low_old, high, low_new):
            q.put(request)
        # Incoming equal-priority request is itself the newest low: rejected.
        with pytest.raises(QueueFull):
            q.put(_Request({}, priority=0))
        # A higher-priority arrival evicts the newest queued low instead.
        mid = _Request({}, priority=1)
        q.put(mid)
        assert low_new.future.done()
        with pytest.raises(QueueFull):
            low_new.future.result(0)
        assert [q.pop(0.5) for _ in range(3)] == [high, mid, low_old]
        assert q.pop(0.01) is None
        assert q.counters() == {"shed_queue_full": 2, "shed_expired": 0}


# ---------------------------------------------------------------------------
# Property-based _AdmissionQueue invariants (satellite: seeded-random loops)
# ---------------------------------------------------------------------------

class TestAdmissionQueueProperties:
    """Seeded-random interleavings of put/pop/expiry/cancel checked against
    an inline reference model of the documented shedding semantics."""

    @staticmethod
    def _shadow_purge(items, expected):
        kept = []
        for entry in items:
            request, expired = entry
            if request.future.cancelled():
                continue                      # dropped on sight, no counter
            if expired:
                expected["expired"].add(request)
                expected["shed_expired"] += 1
                continue
            kept.append(entry)
        items[:] = kept

    def test_random_interleavings_match_reference_model(self):
        import random as random_mod

        for trial in range(25):
            rng = random_mod.Random(f"admission-props-{trial}")
            maxsize = rng.randint(1, 4)
            q = _AdmissionQueue(maxsize)
            now = time.monotonic()
            items = []                        # shadow queue: [(req, expired)]
            expected = {"expired": set(), "evicted": set(),
                        "rejected": set(), "cancelled": set(),
                        "shed_expired": 0, "shed_queue_full": 0}
            puts, pops = [], []
            shadow_seq = [0]

            def shadow_put(request, expired):
                # Mirror the queue's seq assignment (it numbers every put,
                # even one it then rejects) so victim selection can compare
                # (priority, -seq) before the real put runs.
                request.seq = shadow_seq[0]
                shadow_seq[0] += 1
                entry = (request, expired)
                if len(items) >= maxsize:
                    self._shadow_purge(items, expected)
                if len(items) >= maxsize:
                    expected["shed_queue_full"] += 1
                    candidates = items + [entry]
                    victim = min(candidates,
                                 key=lambda e: (e[0].priority, -e[0].seq))
                    if victim is entry:
                        expected["rejected"].add(request)
                        return
                    items.remove(victim)
                    expected["evicted"].add(victim[0])
                items.append(entry)

            def shadow_pop():
                self._shadow_purge(items, expected)
                if not items:
                    return None
                best = max(items, key=lambda e: (e[0].priority, -e[0].seq))
                items.remove(best)
                return best[0]

            ops = ["put_fresh"] * 5 + ["put_expired"] * 2 + ["pop"] * 3 \
                + ["cancel"] * 2
            for _ in range(50):
                op = rng.choice(ops)
                if op in ("put_fresh", "put_expired"):
                    expired = op == "put_expired"
                    deadline = (now - 1.0) if expired else (now + 1000.0)
                    request = _Request({}, deadline=deadline,
                                       priority=rng.randint(0, 3))
                    puts.append(request)
                    shadow_put(request, expired)
                    expect_raise = request in expected["rejected"]
                    try:
                        q.put(request)
                        raised = False
                    except QueueFull:
                        raised = True
                    assert raised == expect_raise
                    assert request.seq == shadow_seq[0] - 1
                elif op == "pop":
                    got = q.pop(0)
                    want = shadow_pop()
                    assert got is want
                    if got is not None:
                        pops.append(got)
                elif op == "cancel":
                    live = [e for e in items
                            if not e[0].future.cancelled()]
                    if live:
                        victim = rng.choice(live)[0]
                        assert victim.future.cancel() is True
                        expected["cancelled"].add(victim)

            while True:                        # drain what's left
                got = q.pop(0)
                want = shadow_pop()
                assert got is want
                if got is None:
                    break
                pops.append(got)

            # -- invariants ------------------------------------------------
            # Counters match the model and sum to the observed rejections.
            assert q.counters() == {
                "shed_queue_full": expected["shed_queue_full"],
                "shed_expired": expected["shed_expired"]}
            # Shedding order: every expired put rejects with
            # DeadlineExceeded (never QueueFull) once purged ...
            for request in expected["expired"]:
                with pytest.raises(DeadlineExceeded):
                    request.future.result(0)
            # ... and queue-full victims are lowest-priority/newest: evicted
            # queued requests resolve to QueueFull, while an incoming victim
            # sees the raise directly and its future stays untouched.
            for request in expected["evicted"]:
                with pytest.raises(QueueFull):
                    request.future.result(0)
            for request in expected["rejected"]:
                assert not request.future.done()
            # No request is both shed and resolved (popped), and every put
            # has exactly one disposition.
            popped = set(pops)
            shed = expected["expired"] | expected["evicted"] \
                | expected["rejected"]
            assert not (popped & shed)
            assert not (popped & expected["cancelled"])
            accounted = (len(popped) + len(shed)
                         + len(expected["cancelled"] - shed))
            assert accounted == len(puts)
            # Popped requests are live: never expired, never cancelled.
            for request in pops:
                assert not request.future.done()


# ---------------------------------------------------------------------------
# cancel()/dispatch race (satellite: hostile-thread regression)
# ---------------------------------------------------------------------------

class TestCancelDispatchRace:
    def test_hostile_cancels_never_execute_never_violate(self, module):
        # A request cancelled while the batcher is coalescing must never
        # execute and never count as a deadline violation — whichever side
        # wins the claim race.
        import random as random_mod

        rng = random_mod.Random("cancel-race")
        engine = repro.serve(module, max_batch=4, timeout_ms=2, devices=1)
        executed, record_lock = [], threading.Lock()
        original = engine._executors[0]._execute

        def recording(inputs):
            with record_lock:
                executed.extend(
                    int(m) for m in np.asarray(inputs["data"])[:, 0, 0, 0])
            return original(inputs)

        engine._executors[0]._execute = recording
        futures, threads = [], []
        try:
            for marker in range(40):
                x = np.zeros((1, 3, 16, 16), "float32")
                x[0, 0, 0, 0] = marker
                future = engine.submit(data=x, deadline_ms=60_000)
                futures.append(future)

                def hostile(f=future, delay=rng.uniform(0.0, 0.005)):
                    time.sleep(delay)
                    f.cancel()

                thread = threading.Thread(target=hostile)
                thread.start()
                threads.append(thread)
                time.sleep(rng.uniform(0.0, 0.002))
            for thread in threads:
                thread.join(10)
            served, cancelled = set(), set()
            for marker, future in enumerate(futures):
                try:
                    future.result(30)
                    served.add(marker)
                except RequestCancelled:
                    cancelled.add(marker)
        finally:
            engine.shutdown()

        assert served | cancelled == set(range(40))
        with record_lock:
            executed_set = set(executed)
        # Cancelled requests never reached execution; served ones all did.
        assert not (executed_set & cancelled)
        assert served == executed_set
        stats = engine.stats()
        assert stats["requests"] == len(served)
        assert stats["slo"]["cancelled"] == len(cancelled)
        assert stats["slo"]["deadline_violations"] == 0

    def test_cancel_after_claim_loses_the_race(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        try:
            future = engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
            assert entered.wait(10)           # claimed: execution started
            assert future.cancel() is False   # the hostile caller lost
            assert not future.cancelled()
        finally:
            gate.set()
        assert len(future.result(30)) == 1
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == 1
        assert stats["slo"]["cancelled"] == 0


# ---------------------------------------------------------------------------
# _BatchCostModel across the zoo (satellite: estimates, caching, rejection)
# ---------------------------------------------------------------------------

def _zoo_variants():
    """Small-footprint variants of every zoo model (same topologies)."""
    from repro.frontend import (dcgan_generator, dqn, lstm_language_model,
                                mobilenet, resnet18)
    return {
        "resnet-18": lambda: resnet18(image_size=32, num_classes=16),
        "mobilenet": lambda: mobilenet(image_size=32, num_classes=16),
        "lstm-lm": lambda: lstm_language_model(hidden_size=32, seq_len=2,
                                               vocab_size=64),
        "dqn": lambda: dqn(),
        "dcgan": lambda: dcgan_generator(latent=16),
    }


@pytest.fixture(scope="class")
def zoo_modules():
    return {name: repro.compile(build(), target=cuda())
            for name, build in _zoo_variants().items()}


class TestBatchCostModel:
    @staticmethod
    def _cost_model(module):
        from repro.runtime.serving import _BatchCostModel

        specs = Executor(module).input_specs
        return _BatchCostModel(module, [s.name for s in specs],
                               specs[0].shape[0])

    def test_estimates_monotone_non_decreasing_in_rows(self, zoo_modules):
        # Non-decreasing, not strictly increasing: graphs whose shapes are
        # pinned past a literal reshape (dcgan) legitimately estimate flat.
        for name, module in zoo_modules.items():
            cost = self._cost_model(module)
            times = [cost.times_for(k * cost.native_rows)[0]
                     for k in (1, 2, 4)]
            assert times[0] > 0.0, name
            assert times[0] <= times[1] <= times[2], (name, times)

    def test_cached_reestimates_are_bit_identical(self, zoo_modules):
        for name, module in zoo_modules.items():
            first = self._cost_model(module)
            second = self._cost_model(module)
            rows = 2 * first.native_rows
            a_total, a_kernels = first.times_for(rows)
            b_total, b_kernels = first.times_for(rows)   # cached re-estimate
            c_total, c_kernels = second.times_for(rows)  # fresh instance
            assert a_total == b_total == c_total, name
            assert a_kernels == b_kernels == c_kernels, name

    def test_native_rows_come_from_the_compiled_module(self, zoo_modules):
        for name, module in zoo_modules.items():
            cost = self._cost_model(module)
            total, kernels = cost.times_for(cost.native_rows)
            assert total == module.total_time, name
            assert kernels == [(k.name, k.time_seconds)
                               for k in module.kernels], name


def _non_batchable_module():
    """Two data inputs with different leading dims: not dynamically
    batchable (there is no shared batch axis to concatenate along)."""
    b = ModelBuilder("nonbatch", seed=0)
    x1 = b.input("x1", (1, 4))
    x2 = b.input("x2", (2, 2))
    out = b.add(x1, b.reshape(x2, (1, 4)))
    graph, params = b.finalize(out)
    return repro.compile((graph, params, {"x1": (1, 4), "x2": (2, 2)}),
                         target=cuda())


class TestNonBatchableGraphs:
    def test_static_max_batch_gt_one_rejected_with_typed_error(self):
        module = _non_batchable_module()
        with pytest.raises(ValueError, match="leading batch axis"):
            repro.serve(module, max_batch=2)

    def test_adaptive_degrades_to_batches_of_one(self):
        module = _non_batchable_module()
        engine = repro.serve(module, max_batch="adaptive")
        try:
            assert engine.max_batch == 1
            x1 = np.ones((1, 4), "float32")
            x2 = np.ones((2, 2), "float32")
            outs = engine.infer(x1=x1, x2=x2)
            np.testing.assert_array_equal(outs[0], np.full((1, 4), 2.0,
                                                           "float32"))
        finally:
            engine.shutdown()


# ---------------------------------------------------------------------------
# Adaptive batch sizing (tentpole: max_batch="adaptive")
# ---------------------------------------------------------------------------

class TestAdaptiveBatching:
    def test_knob_validation(self, module):
        with pytest.raises(ValueError, match="max_batch"):
            repro.serve(module, max_batch="auto")
        with pytest.raises(ValueError, match="adaptive_max_batch"):
            repro.serve(module, max_batch="adaptive", adaptive_max_batch=0)
        with pytest.raises(ValueError, match="p99_target_ms"):
            repro.serve(module, max_batch="adaptive", p99_target_ms=0.0)

    def test_outputs_bit_identical_to_solo_execution(self, module,
                                                     requests_and_expected):
        inputs, expected = requests_and_expected
        with repro.serve(module, max_batch="adaptive",
                         p99_target_ms=120.0) as engine:
            results = engine.infer_many([{"data": x} for x in inputs],
                                        timeout=30)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got[0], want)

    def test_stats_expose_decisions_and_latency_split(self, module,
                                                      requests_and_expected):
        inputs, _ = requests_and_expected
        engine = repro.serve(module, max_batch="adaptive",
                             p99_target_ms=120.0)
        futures = [engine.submit(data=x, deadline_ms=60_000) for x in inputs]
        for future in futures:
            future.result(30)
            assert future.queue_wait is not None
            assert future.execute_latency is not None
        engine.shutdown()
        stats = engine.stats()
        assert stats["adaptive"]["enabled"] is True
        assert stats["adaptive"]["p99_target_ms"] == 120.0
        decisions = stats["adaptive"]["decisions"]
        assert sum(decisions.values()) == stats["batches"]
        assert all(1 <= size <= engine.max_batch for size in decisions)
        assert stats["wall"]["queue_wait"]["mean_ms"] >= 0.0
        assert stats["wall"]["execution"]["mean_ms"] > 0.0

    def test_static_engines_report_adaptive_disabled(self, module):
        with repro.serve(module, max_batch=2) as engine:
            engine.infer(data=np.zeros((1, 3, 16, 16), "float32"))
        stats = engine.stats()
        assert stats["adaptive"]["enabled"] is False
        assert stats["adaptive"]["decisions"] == {}

    def test_deep_queue_coalesces_under_the_target(self, module):
        # Pile requests behind a gate, then release: the adaptive batcher
        # sees the whole backlog and its per-size estimates fit comfortably
        # inside the p99 target, so at least one multi-request batch forms.
        engine, gate, entered = _gated_engine(module,
                                              max_batch="adaptive",
                                              p99_target_ms=10_000.0,
                                              devices=1)
        futures = []
        try:
            futures.append(
                engine.submit(data=np.zeros((1, 3, 16, 16), "float32")))
            assert entered.wait(10)
            for _ in range(12):
                futures.append(
                    engine.submit(data=np.zeros((1, 3, 16, 16), "float32")))
            time.sleep(0.05)      # let the backlog settle in the queue
        finally:
            gate.set()
        for future in futures:
            future.result(30)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == len(futures)
        assert stats["batches"] < len(futures)
        assert max(stats["adaptive"]["decisions"]) > 1
