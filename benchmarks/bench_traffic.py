"""Trace-replay traffic benchmark: goodput/SLO curves, static vs adaptive.

Replays the three seeded trace families from ``repro.runtime.traffic``
(Poisson, diurnal, burst) against ``InferenceEngine`` at several offered-load
levels, once with the static batcher (``max_batch=8`` with a fixed coalescing
window) and once with adaptive batch sizing (``max_batch="adaptive"``), and
writes ``BENCH_traffic.json`` next to this file with a goodput and
SLO-violation curve per (family, load level, policy) cell.

The scenario is deliberately deadline-hostile for the static policy: every
request carries a 120 ms deadline while the static batcher's coalescing
window is 150 ms, so under light load a static engine holds lone requests
past their deadline where the adaptive batcher — which consults the
``_BatchCostModel`` and current queue headroom — dispatches immediately.
Under heavy load both policies fill batches quickly and converge.

Acceptance gates (enforced here; ``--smoke`` enforces them in CI):

* **goodput** — adaptive goodput >= static goodput at *every* (family,
  level) cell, modulo a small documented scheduling-jitter slack, and
  strictly greater summed over all cells.
* **no hung futures** — every submitted request resolves to a terminal
  outcome in every run.
* **bit-identical outputs** — every served request's output equals a solo
  ``Executor`` run of the same input, for both policies.

Usage::

    python benchmarks/bench_traffic.py            # full run (5 s traces)
    python benchmarks/bench_traffic.py --smoke    # CI-sized (2 s traces)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.frontend import ModelBuilder
from repro.hardware import cuda
from repro.runtime import Executor, InferenceEngine
from repro.runtime.traffic import TraceReplayer, TraceSpec

from common import emit_summary

DEVICES = 2
MAX_QUEUE = 512
DEADLINE_MS = 120.0
STATIC_WINDOW_MS = 150.0
MAX_BATCH = 8
LOAD_LEVELS_RPS = (25.0, 100.0, 400.0)
INPUT_POOL = 8
TRACE_SEED = 20260808

#: per-cell goodput slack (rps) tolerated for host scheduling jitter — the
#: two policies replay the same wall-clock trace on a shared host, so a tie
#: can wobble by a few requests either way; the summed-goodput gate below is
#: strict, so adaptive must still win overall.
def _jitter_slack_rps(static_goodput: float) -> float:
    return max(3.0, 0.05 * static_goodput)


def _small_cnn():
    b = ModelBuilder("traffic-cnn", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    return b.finalize(net)


def _input_pool(seed: int):
    pool = []
    for slot in range(INPUT_POOL):
        digest = hashlib.sha256(f"traffic-bench:{seed}:{slot}".encode())
        rng = np.random.default_rng(int.from_bytes(digest.digest()[:8],
                                                   "little"))
        pool.append({"data": rng.random((1, 3, 16, 16)).astype("float32")})
    return pool


def _trace_spec(family: str, rate_rps: float, duration_s: float) -> TraceSpec:
    extra = {}
    if family == "diurnal":
        extra = {"diurnal_period_s": duration_s, "diurnal_amplitude": 0.8}
    elif family == "burst":
        extra = {"burst_every_s": 1.0, "burst_duration_s": 0.25,
                 "burst_factor": 4.0}
    return TraceSpec(family=family, rate_rps=rate_rps, duration_s=duration_s,
                     seed=TRACE_SEED, deadline_ms=DEADLINE_MS, **extra)


def _make_engine(module, policy: str) -> InferenceEngine:
    if policy == "adaptive":
        return InferenceEngine(module, devices=DEVICES,
                               max_batch="adaptive",
                               p99_target_ms=DEADLINE_MS,
                               adaptive_max_batch=MAX_BATCH,
                               max_queue=MAX_QUEUE)
    return InferenceEngine(module, devices=DEVICES, max_batch=MAX_BATCH,
                           timeout_ms=STATIC_WINDOW_MS, max_queue=MAX_QUEUE)


def run_cell(module, reference, pool, family: str, rate_rps: float,
             duration_s: float, policy: str) -> dict:
    """Replay one (family, load, policy) cell and return its row."""
    trace = _trace_spec(family, rate_rps, duration_s).generate()
    engine = _make_engine(module, policy)
    try:
        replayer = TraceReplayer(
            engine, trace, store_outputs=True,
            inputs_for=lambda request: pool[request.index % INPUT_POOL])
        wall_start = time.monotonic()
        report = replayer.replay()
        wall_s = time.monotonic() - wall_start
        stats = engine.stats()
    finally:
        engine.shutdown()

    bit_identical = True
    for record in report.records:
        if record["outcome"] != "served":
            continue
        outs = report.outputs[record["index"]]
        ref = reference[record["index"] % INPUT_POOL]
        if len(outs) != len(ref) or not all(
                (np.asarray(a) == np.asarray(b)).all()
                for a, b in zip(outs, ref)):
            bit_identical = False
            break

    counts = report.counts()
    return {
        "family": family,
        "offered_rps_target": rate_rps,
        "offered_rps": report.trace.offered_rps(),
        "policy": policy,
        "requests": len(trace),
        "trace_sha256": hashlib.sha256(
            trace.to_jsonl().encode()).hexdigest(),
        "outcomes": counts,
        "served_ok": report.served_ok,
        "served_late": report.served_late,
        "goodput_rps": report.goodput_rps,
        "violation_rate": report.violation_rate,
        "latency_split_ms": report.latency_split_ms(),
        "goodput_curve": report.windowed_goodput(0.5),
        "adaptive_decisions": stats["adaptive"]["decisions"],
        "hung": counts["hung"],
        "bit_identical_outputs": bit_identical,
        "replay_wall_s": wall_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (shorter traces), same gates")
    parser.add_argument("--budget", type=float, default=420.0,
                        help="soft wall-clock budget in seconds (recorded)")
    parser.add_argument("--output", type=Path, default=None,
                        help="output JSON path (default: BENCH_traffic.json "
                             "or BENCH_traffic_smoke.json next to this file)")
    args = parser.parse_args(argv)

    duration_s = 2.0 if args.smoke else 5.0
    default_name = ("BENCH_traffic_smoke.json" if args.smoke
                    else "BENCH_traffic.json")
    out_path = args.output or Path(__file__).parent / default_name

    t_start = time.monotonic()
    module = repro.compile(_small_cnn(), target=cuda())
    pool = _input_pool(TRACE_SEED)
    solo = Executor(module)
    reference = [[np.asarray(o) for o in solo.run(inputs).outputs]
                 for inputs in pool]

    rows = []
    for family in ("poisson", "diurnal", "burst"):
        for rate in LOAD_LEVELS_RPS:
            for policy in ("static", "adaptive"):
                row = run_cell(module, reference, pool, family, rate,
                               duration_s, policy)
                rows.append(row)
                print(f"{family:8s} @{rate:6.1f} rps {policy:8s}: "
                      f"goodput {row['goodput_rps']:8.2f} rps, "
                      f"violations {row['violation_rate']:.3f}, "
                      f"outcomes {row['outcomes']}")

    # ----------------------------------------------------------- gates
    cells = []
    static_total = adaptive_total = 0.0
    hung_total = 0
    bit_identical_all = True
    for family in ("poisson", "diurnal", "burst"):
        for rate in LOAD_LEVELS_RPS:
            static = next(r for r in rows if r["family"] == family
                          and r["offered_rps_target"] == rate
                          and r["policy"] == "static")
            adaptive = next(r for r in rows if r["family"] == family
                            and r["offered_rps_target"] == rate
                            and r["policy"] == "adaptive")
            slack = _jitter_slack_rps(static["goodput_rps"])
            cells.append({
                "family": family,
                "offered_rps_target": rate,
                "static_goodput_rps": static["goodput_rps"],
                "adaptive_goodput_rps": adaptive["goodput_rps"],
                "jitter_slack_rps": slack,
                "passed": bool(adaptive["goodput_rps"]
                               >= static["goodput_rps"] - slack),
            })
            static_total += static["goodput_rps"]
            adaptive_total += adaptive["goodput_rps"]
            hung_total += static["hung"] + adaptive["hung"]
            bit_identical_all = (bit_identical_all
                                 and static["bit_identical_outputs"]
                                 and adaptive["bit_identical_outputs"])

    acceptance = {
        "goodput": {
            "criterion": "adaptive goodput >= static goodput at every "
                         "(family, load) cell (modulo scheduling-jitter "
                         "slack) and strictly greater summed over all cells",
            "cells": cells,
            "static_total_goodput_rps": static_total,
            "adaptive_total_goodput_rps": adaptive_total,
            "passed": bool(all(c["passed"] for c in cells)
                           and adaptive_total > static_total),
        },
        "no_hung_futures": {
            "criterion": "every submitted request resolves to a terminal "
                         "outcome in every run",
            "hung": hung_total,
            "passed": hung_total == 0,
        },
        "bit_identical_outputs": {
            "criterion": "every served request's output equals a solo "
                         "Executor run of the same input",
            "passed": bit_identical_all,
        },
    }
    elapsed = time.monotonic() - t_start

    payload = {
        "suite": "traffic",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "devices": DEVICES,
        "deadline_ms": DEADLINE_MS,
        "static_window_ms": STATIC_WINDOW_MS,
        "max_batch": MAX_BATCH,
        "load_levels_rps": list(LOAD_LEVELS_RPS),
        "trace_duration_s": duration_s,
        "trace_seed": TRACE_SEED,
        "rows": rows,
        "acceptance": acceptance,
        "elapsed_s": elapsed,
        "budget_s": args.budget,
    }
    out_path.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"\nwrote {out_path} ({elapsed:.1f}s)")

    emit_summary("traffic", {
        "smoke": args.smoke,
        "static_total_goodput_rps": round(static_total, 2),
        "adaptive_total_goodput_rps": round(adaptive_total, 2),
        "mean_violation_rate_static": round(
            sum(r["violation_rate"] for r in rows
                if r["policy"] == "static") / (len(rows) / 2), 4),
        "mean_violation_rate_adaptive": round(
            sum(r["violation_rate"] for r in rows
                if r["policy"] == "adaptive") / (len(rows) / 2), 4),
        "hung": hung_total,
        "gates_passed": all(g["passed"] for g in acceptance.values()),
    })

    failed = [name for name, gate in acceptance.items() if not gate["passed"]]
    if failed:
        print(f"ACCEPTANCE FAILED: {failed}", file=sys.stderr)
        return 1
    print("all acceptance gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
