"""Simulated embedded CPU back-end (ARM Cortex A53, paper Section 6.2).

The model computes latency from the lowered loop program:

* compute time — floating point work divided by achievable throughput, which
  depends on vectorization (NEON lanes), unrolling (instruction-level
  parallelism), and multi-core ``parallel`` annotations;
* memory time — cache-aware DRAM traffic (using the per-loop-level touch
  regions extracted from the program) divided by memory bandwidth, plus an
  L2-level term so that tiling for both cache levels matters;
* low-precision work — bit-serial operations executed through tensorized
  micro-kernels get credited with a higher effective throughput, mirroring
  the paper's ultra low-precision operators (Figure 18).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..tir.analysis import ProgramFeatures
from .base import HardwareModel, HardwareParams

__all__ = ["CPUParams", "EmbeddedCPU", "arm_a53_params", "cortex_a9_params"]


@dataclass
class CPUParams(HardwareParams):
    """CPU-specific capability description."""

    frequency: float = 1.2e9
    num_cores: int = 4
    simd_lanes: int = 4           # 128-bit NEON, fp32
    fma_per_cycle: int = 1        # fused multiply-add pipes per core
    l1_bytes: float = 32 << 10
    l2_bytes: float = 512 << 10
    l2_bandwidth: float = 12e9
    scalar_efficiency: float = 0.45   # non-vectorized issue efficiency
    bitserial_speedup: float = 5.0    # credit for tensorized bit-serial kernels


def cortex_a9_params() -> CPUParams:
    """Parameters approximating the PYNQ board's dual-core ARM Cortex A9 @ 667 MHz.

    This is the host CPU of the paper's FPGA platform (Section 6.4 /
    Figure 21): an in-order NEON pipeline without fused multiply-add, sharing
    its modest DDR3 bandwidth with the FPGA fabric.
    """
    return CPUParams(
        name="arm-cortex-a9",
        frequency=667e6,
        num_cores=2,
        simd_lanes=4,
        fma_per_cycle=1,
        peak_flops=667e6 * 2 * 4,          # freq * cores * lanes (no FMA)
        dram_bandwidth=0.8e9,
        onchip_bandwidth=6e9,
        cache_bytes=512 << 10,
        l1_bytes=32 << 10,
        l2_bandwidth=5e9,
        scalar_efficiency=0.35,
        launch_overhead=4e-6,
        noise_std=0.05,
    )


def arm_a53_params() -> CPUParams:
    """Parameters approximating a quad-core ARM Cortex A53 @ 1.2 GHz."""
    return CPUParams(
        name="arm-cortex-a53",
        frequency=1.2e9,
        num_cores=4,
        simd_lanes=4,
        fma_per_cycle=1,
        peak_flops=1.2e9 * 4 * 4 * 2,      # freq * cores * lanes * fma
        dram_bandwidth=3.2e9,
        onchip_bandwidth=16e9,
        cache_bytes=512 << 10,
        l1_bytes=32 << 10,
        launch_overhead=2e-6,
        noise_std=0.04,
    )


class EmbeddedCPU(HardwareModel):
    """Analytic model of a small multi-core CPU with SIMD units."""

    device_type = "cpu"

    def __init__(self, params: Optional[CPUParams] = None, seed: int = 0):
        super().__init__(params or arm_a53_params(), seed)
        self.cpu: CPUParams = self.params  # type: ignore[assignment]

    # ------------------------------------------------------------------ model
    def estimate(self, features: ProgramFeatures) -> float:
        cpu = self.cpu

        # --- compute throughput ------------------------------------------------
        cores_used = 1.0
        if features.parallel_extent > 1:
            cores_used = min(features.parallel_extent, cpu.num_cores)
        parallel_eff = self._parallel_efficiency(cores_used, cpu.num_cores) \
            * cpu.num_cores  # scale back to "cores worth of throughput"

        if features.vector_lanes > 1:
            vector_eff = min(features.vector_lanes, cpu.simd_lanes) / cpu.simd_lanes
        else:
            vector_eff = cpu.scalar_efficiency / cpu.simd_lanes

        # Unrolling exposes instruction-level parallelism; saturate at 4x.
        ilp_eff = 0.6 + 0.4 * min(features.unroll_product, 4.0) / 4.0

        per_core_flops = cpu.frequency * cpu.simd_lanes * 2 * cpu.fma_per_cycle
        effective_flops = per_core_flops * parallel_eff * vector_eff * ilp_eff
        effective_flops = max(effective_flops, 1.0)

        scalar_flops = features.flops
        intrinsic_flops = features.intrinsic_flops
        compute_time = scalar_flops / effective_flops
        if intrinsic_flops:
            # Tensorized micro-kernels (e.g. bit-serial GEMV) run at a higher
            # effective rate because they use hand-written SIMD sequences.
            compute_time += intrinsic_flops / (
                per_core_flops * parallel_eff * cpu.bitserial_speedup)

        # Integer/index overhead matters for poorly unrolled inner loops.
        # Vectorized loops share one address computation per vector, and the
        # code generator strength-reduces and hoists most of the remaining
        # index arithmetic, so the raw count is amortised accordingly.
        addr_amortise = (max(features.vector_lanes, 1.0)
                         * min(max(features.unroll_product, 1.0), 8.0) * 2.0)
        effective_int_ops = features.int_ops / addr_amortise
        compute_time += effective_int_ops / (cpu.frequency * 2 * max(parallel_eff, 0.25))

        # --- memory hierarchy ---------------------------------------------------
        dram_traffic = features.cache_aware_traffic(cpu.l2_bytes, "global")
        l2_traffic = features.cache_aware_traffic(cpu.l1_bytes, "global")
        dram_time = dram_traffic / cpu.dram_bandwidth
        l2_time = l2_traffic / cpu.l2_bandwidth

        # On-chip buffers explicitly introduced by cache_read/cache_write.
        onchip_time = (features.bytes_in_scope("local")
                       + features.bytes_in_scope("shared")) / cpu.onchip_bandwidth

        memory_time = max(dram_time, l2_time) + onchip_time

        # Memory and compute partially overlap thanks to hardware prefetching
        # and out-of-order-ish dual issue: use a soft-max combination.
        overlap = 0.7
        total = max(compute_time, memory_time) + overlap * min(compute_time, memory_time) * 0.3
        total += cpu.launch_overhead
        # Thread launch/join overhead for parallel regions.
        if cores_used > 1:
            total += 5e-6
        return total
