"""The single front door of the compiler: :func:`repro.compile`.

Accepts a graph (or a frontend model — a ``(graph, params, input_shapes)``
tuple from :mod:`repro.frontend.models`, or a model-zoo name), runs the
registered graph-optimization pipeline under the active
:class:`~repro.compiler.pass_context.PassContext`, generates one kernel per
fused group with the operator-level compiler, and returns a single
:class:`~repro.compiler.module.CompiledModule` carrying everything the
runtime and the benchmarks need — including the per-pass instrumentation
records.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..autotvm.apply_history import ApplyHistoryBest
from ..autotvm.database import TuningDatabase
from ..graph.ir import Graph
from ..graph.op_timing import kernel_time
from ..graph.passes import MemoryPlan, fuse_ops as _fuse_ops_raw, plan_memory
from ..hardware.target import Target, create_target
from . import passes as _standard_passes  # noqa: F401  (registers the passes)
from .instruments import TimingInstrument
from .module import CompiledKernel, CompiledModule
from .pass_context import PassContext
from .pass_manager import CompileState, Sequential

__all__ = ["compile", "framework_overhead"]

#: model inputs accepted by :func:`compile`
ModelLike = Union[Graph, str, Tuple, List]


def framework_overhead(target: Target) -> float:
    """Per-kernel dispatch overhead of the runtime on ``target``.

    Dispatching a packed function through the runtime costs roughly half of
    the device's full kernel-launch overhead, so the value comes from the
    target's hardware profile rather than a global constant: fast CPUs pay
    less than a driver round-trip on a mobile GPU or an accelerator.
    """
    params = target.model.params
    return float(getattr(params, "dispatch_overhead",
                         0.5 * params.launch_overhead))


def _resolve_target(target: Union[Target, str, None]) -> Target:
    if isinstance(target, Target):
        return target
    if isinstance(target, str):
        return create_target(target)
    raise TypeError(f"target must be a Target or a target name, got {target!r}")


def _resolve_model(model: ModelLike,
                   params: Optional[Dict[str, np.ndarray]],
                   input_shapes: Optional[Dict[str, Tuple[int, ...]]]
                   ) -> Tuple[Graph, Dict[str, np.ndarray], Dict[str, Tuple[int, ...]]]:
    """Normalise the accepted model forms to ``(graph, params, shapes)``."""
    model_shapes: Dict[str, Tuple[int, ...]] = {}
    if isinstance(model, str):
        from ..frontend.models import get_model

        graph, model_params, model_shapes = get_model(model)
        params = model_params if params is None else params
    elif isinstance(model, Graph):
        graph = model
    elif isinstance(model, (tuple, list)) and len(model) in (2, 3):
        graph = model[0]
        if not isinstance(graph, Graph):
            raise TypeError(f"Expected a Graph first in {type(model).__name__} "
                            f"model, got {type(graph).__name__}")
        params = dict(model[1]) if params is None else params
        if len(model) == 3:
            model_shapes = dict(model[2])
    else:
        raise TypeError(
            "model must be a Graph, a frontend model tuple "
            "(graph, params[, input_shapes]) or a model-zoo name; got "
            f"{type(model).__name__}")

    shapes = dict(model_shapes)
    for node in graph.input_nodes:
        if node.shape is not None:
            shapes.setdefault(node.name, tuple(node.shape))
    if input_shapes:
        shapes.update({name: tuple(shape) for name, shape in input_shapes.items()})
    return graph, dict(params or {}), shapes


#: lowered programs already certified by ``compile(verify=True)``, keyed by
#: (workload, args, target, config index) — kernels recur across models and
#: opt levels, so each distinct program is verified exactly once per process
_VERIFIED_PROGRAMS: set = set()


def _verify_kernel_program(node, target: Target,
                           config_index: Optional[int]) -> None:
    """Statically verify the lowered loop program of one templated kernel.

    Raises the typed :class:`~repro.analysis.errors.TIRVerifierError` when
    the chosen schedule configuration produces an illegal program (e.g. a
    compacted-buffer writeback that misindexes when a fused tile crosses a
    row boundary) instead of simulating its latency as if it were sound.
    """
    from ..analysis.tir_verify import verify_func
    from ..graph.op_timing import _TEMPLATED_OPS, make_task_for_node

    if config_index is None or node.op not in _TEMPLATED_OPS:
        return
    # Key on the node's workload signature rather than the Task's args:
    # building a Task materialises its whole config space, which would cost
    # more than the verification it is meant to dedup.
    key = (node.op, tuple(node.shape),
           tuple(tuple(parent.shape) for parent in node.inputs),
           repr(sorted(node.attrs.items())), target.name, config_index)
    if key in _VERIFIED_PROGRAMS:
        return
    task = make_task_for_node(node, target)
    verify_func(task.lowered(config_index))
    _VERIFIED_PROGRAMS.add(key)


def _generate_kernels(state: CompileState,
                      tuning_db: Optional[TuningDatabase],
                      heterogeneous_targets: Optional[Dict[str, Target]],
                      verify: bool = False) -> List[CompiledKernel]:
    """Operator-level compilation: one kernel per fused group."""
    groups = state.groups
    if groups is None:  # fusion disabled: one kernel per operator
        groups = _fuse_ops_raw(state.graph, enabled=False)
    kernels: List[CompiledKernel] = []
    for group in groups:
        node_target = state.target
        if heterogeneous_targets and group.master.op in heterogeneous_targets:
            node_target = heterogeneous_targets[group.master.op]
        master = kernel_time(group.master, node_target,
                             tuning_db=tuning_db, fused=False)
        if verify:
            _verify_kernel_program(group.master, node_target,
                                   master.config_index)
        fused_time = sum(
            kernel_time(node, node_target, tuning_db=tuning_db, fused=True).time
            for node in group.nodes if node is not group.master)
        total = master.time + fused_time + framework_overhead(node_target)
        kernels.append(CompiledKernel(group, total, node_target.name,
                                      tuned=master.tuned,
                                      config_index=master.config_index))
    return kernels


def _resolve_tuning_db(ctx: PassContext,
                       tuning_db: Optional[TuningDatabase]):
    """The tuning history this compilation consults, in precedence order:
    explicit (deprecated) kwarg, ``PassContext.config["tuning_db"]``, then
    the innermost active :class:`ApplyHistoryBest` context."""
    if tuning_db is not None:
        warnings.warn(
            "repro.compile(tuning_db=...) is deprecated; compile inside "
            "`with report.apply_history_best():` (or an "
            "autotvm.ApplyHistoryBest context) instead",
            DeprecationWarning, stacklevel=3)
        return tuning_db
    from_ctx = ctx.config.get("tuning_db")
    if from_ctx is not None:
        return from_ctx
    return ApplyHistoryBest.current()


def _unplanned_memory(graph: Graph,
                      dtype_bytes: Optional[int] = None) -> MemoryPlan:
    """Fallback plan when ``plan_memory`` is disabled: no storage reuse."""
    from ..tir.stmt import dtype_bytes as _elem_bytes

    storage_of: Dict[str, int] = {}
    token_bytes: Dict[int, int] = {}
    for token, node in enumerate(graph.op_nodes):
        elem = dtype_bytes if dtype_bytes is not None else _elem_bytes(node.dtype)
        size = int(np.prod(node.shape)) * elem
        storage_of[node.name] = token
        token_bytes[token] = size
    return MemoryPlan(storage_of, token_bytes, sum(token_bytes.values()))


def compile(model: ModelLike, target: Union[Target, str, None] = None, *,
            params: Optional[Dict[str, np.ndarray]] = None,
            input_shapes: Optional[Dict[str, Tuple[int, ...]]] = None,
            opt_level: Optional[int] = None,
            tuning_db: Optional[TuningDatabase] = None,
            heterogeneous_targets: Optional[Dict[str, Union[Target, str]]] = None,
            pipeline: Optional[Union[Sequential, Sequence]] = None,
            verify: Optional[bool] = None
            ) -> CompiledModule:
    """Compile a model for a target and return a :class:`CompiledModule`.

    Parameters
    ----------
    model:
        A :class:`~repro.graph.ir.Graph`, a frontend model tuple
        ``(graph, params[, input_shapes])`` as returned by the model zoo, or
        a model-zoo name such as ``"resnet-18"``.
    target:
        A :class:`~repro.hardware.target.Target` or a short name
        (``"cuda"``, ``"arm_cpu"``, ``"mali"``, ``"vdla"``).
    params / input_shapes:
        Override or supplement whatever the model form provided.
    opt_level:
        Shortcut overriding the active :class:`PassContext`'s level; prefer
        configuring a ``PassContext`` for anything beyond that.
    tuning_db:
        Deprecated alias.  The operator-level compiler now picks up tuning
        history automatically from ``PassContext.config["tuning_db"]`` or an
        active :class:`~repro.autotvm.apply_history.ApplyHistoryBest` context
        (``with report.apply_history_best(): repro.compile(...)``).
    heterogeneous_targets:
        Optional operator-name -> target mapping (the CPU+FPGA offloading
        experiment of Figure 21).
    pipeline:
        Replace the default pass pipeline with a :class:`Sequential` or a
        list of pass names / :class:`Pass` objects.
    verify:
        Run the static IR verifier (:mod:`repro.analysis`) after every pass
        and over every generated kernel's lowered program; broken IR raises
        a typed :class:`~repro.analysis.errors.VerifierError` naming the
        offending pass and node.  Defaults to
        ``PassContext.config["verify"]`` (off when unset).
    """
    graph, params, shapes = _resolve_model(model, params, input_shapes)
    resolved_target = _resolve_target(target)
    het_targets = None
    if heterogeneous_targets:
        het_targets = {op: _resolve_target(t)
                       for op, t in heterogeneous_targets.items()}

    ctx = PassContext.current()
    if opt_level is not None:
        ctx = ctx.cloned(opt_level=opt_level)
    verify_on = bool(ctx.config.get("verify", False)) if verify is None else verify

    timing = TimingInstrument()
    instruments = list(ctx.instruments) + [timing]
    configured_bytes = ctx.config.get("plan_memory.dtype_bytes")
    if verify_on:
        from ..analysis.instrument import VerifyInstrument

        instruments.append(VerifyInstrument(
            dtype_bytes=None if configured_bytes is None
            else int(configured_bytes)))
    state = CompileState(graph=graph, params=params, target=resolved_target,
                         input_shapes=shapes)
    sequential = pipeline if isinstance(pipeline, Sequential) else Sequential(pipeline)
    state = sequential(state, ctx, instruments=instruments)

    if state.memory_plan is None:
        state.memory_plan = _unplanned_memory(
            state.graph, None if configured_bytes is None
            else int(configured_bytes))
    if verify_on:
        # Final check: the post-pipeline graph together with the artifacts
        # codegen consumes (fusion groups, possibly the fallback memory plan
        # built above, which no pass instrument ever saw).
        from ..analysis.graph_verify import verify_graph

        verify_graph(state.graph, groups=state.groups,
                     memory_plan=state.memory_plan,
                     dtype_bytes=None if configured_bytes is None
                     else int(configured_bytes),
                     pass_name="codegen")
    kernels = _generate_kernels(state, _resolve_tuning_db(ctx, tuning_db),
                                het_targets, verify=verify_on)
    for instrument in ctx.instruments:
        for kernel in kernels:
            instrument.observe_kernel(kernel)

    return CompiledModule(
        graph=state.graph,
        kernels=kernels,
        params=state.params,
        target=resolved_target,
        memory_plan=state.memory_plan,
        opt_level=ctx.opt_level,
        layout_transforms=int(state.stats.get("layout_transforms", 0)),
        pass_records=list(timing.records),
    )
