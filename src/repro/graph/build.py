"""Legacy end-to-end graph compilation entry point (deprecated shim).

The monolithic ``build`` of early revisions has been replaced by the
composable pipeline in :mod:`repro.compiler`: :func:`repro.compile` runs the
registered graph passes under a :class:`~repro.compiler.PassContext` and
returns a single :class:`~repro.compiler.module.CompiledModule`.

``build`` remains for backward compatibility: it delegates to the new
pipeline and returns the legacy ``(graph, module, params)`` 3-tuple, emitting
a :class:`DeprecationWarning`.  ``CompiledKernel`` / ``CompiledModule`` are
re-exported from their new home in :mod:`repro.compiler.module`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from ..autotvm.database import TuningDatabase
from ..compiler.module import CompiledKernel, CompiledModule
from ..hardware.target import Target
from .ir import Graph

__all__ = ["CompiledKernel", "CompiledModule", "build"]


def _framework_overhead(target: Target) -> float:
    """Per-kernel dispatch overhead of the runtime (from the target profile)."""
    from ..compiler.driver import framework_overhead

    return framework_overhead(target)


def build(graph: Graph, target: Target, params: Dict[str, np.ndarray],
          opt_level: int = 2, tuning_db: Optional[TuningDatabase] = None,
          heterogeneous_targets: Optional[Dict[str, Target]] = None
          ) -> Tuple[Graph, CompiledModule, Dict[str, np.ndarray]]:
    """Deprecated: use :func:`repro.compile` instead.

    Compiles ``graph`` through the :mod:`repro.compiler` pipeline with
    ``PassContext(opt_level=opt_level)`` semantics and returns the legacy
    ``(graph, module, params)`` tuple, all three of which are reachable from
    the module alone (``module.graph`` / ``module.params``).
    """
    warnings.warn(
        "repro.graph.build() is deprecated; use repro.compile(graph, "
        "target=..., params=...) which returns a single CompiledModule",
        DeprecationWarning, stacklevel=2)
    from ..compiler.driver import compile as _compile

    module = _compile(graph, target=target, params=params, opt_level=opt_level,
                      tuning_db=tuning_db,
                      heterogeneous_targets=heterogeneous_targets)
    return module.graph, module, module.params
