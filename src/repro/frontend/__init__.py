"""Frontend: framework importers, model builder and the evaluation model zoo."""

from .builder import ModelBuilder
from .converters import (
    KerasConversionError,
    ONNXConversionError,
    from_keras,
    from_onnx,
)
from .models import (
    MODEL_REGISTRY,
    dcgan_generator,
    dqn,
    get_model,
    lstm_language_model,
    mobilenet,
    resnet18,
)

__all__ = [
    "KerasConversionError",
    "MODEL_REGISTRY",
    "ModelBuilder",
    "ONNXConversionError",
    "dcgan_generator",
    "dqn",
    "from_keras",
    "from_onnx",
    "get_model",
    "lstm_language_model",
    "mobilenet",
    "resnet18",
]
