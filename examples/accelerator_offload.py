"""Targeting the VDLA accelerator: tensorization and latency hiding (Sections 4.3/4.4/6.4).

Builds a blocked GEMM schedule for the VDLA (a TPU-like decoupled
access-execute accelerator), shows the tensorized + token-synchronised
instruction stream, compares latency with and without virtual-thread latency
hiding, and finishes with the heterogeneous ResNet-18 build that offloads
convolutions to the accelerator (Figure 21).

Run:  python examples/accelerator_offload.py
"""

import repro
from repro import tir
from repro.frontend import resnet18
from repro.hardware import VDLAAccelerator, arm_cpu, pynq_vdla_params, vdla
from repro.tir.transforms import inject_virtual_threads
from repro.topi.schedules import vdla as vdla_sched


def gemm_on_vdla() -> None:
    accel = VDLAAccelerator(pynq_vdla_params())
    m = n = k = 256
    print(f"Blocked {m}x{n}x{k} GEMM on the VDLA (16x16 tensor core)")
    for vthreads in (1, 2, 4):
        schedule, tensors = vdla_sched.schedule_gemm_vdla(m, n, k, vthreads=vthreads)
        func = tir.lower(schedule, tensors, name=f"gemm_vt{vthreads}")
        func = inject_virtual_threads(func)
        hiding = vthreads > 1
        time = accel.estimate_func(func, latency_hiding=hiding)
        util = accel.compute_utilization(func, latency_hiding=hiding)
        print(f"  virtual threads = {vthreads}: {time * 1e3:7.3f} ms, "
              f"compute utilisation {util * 100:5.1f}%")
    features = tir.extract_features(func)
    print(f"  tensorized intrinsic calls: {int(features.intrinsic_calls)}, "
          f"dependence tokens: {int(features.dep_token_count)}")


def resnet_offload() -> None:
    print("\nHeterogeneous ResNet-18: convolutions offloaded to the FPGA")
    cpu_target = arm_cpu()
    cpu_only = repro.compile(resnet18(batch=1), target=cpu_target)
    offloaded = repro.compile(resnet18(batch=1), target=cpu_target,
                              heterogeneous_targets={"conv2d": vdla()})
    for label, module in (("CPU only", cpu_only), ("CPU + VDLA", offloaded)):
        conv = sum(k.time_seconds for k in module.kernels
                   if k.group.master.op == "conv2d")
        other = module.total_time - conv
        print(f"  {label:<10s} total {module.total_time * 1e3:8.2f} ms "
              f"(conv {conv * 1e3:8.2f} ms, other {other * 1e3:7.2f} ms)")


if __name__ == "__main__":
    gemm_on_vdla()
    resnet_offload()
