"""Vanilla Deep Learning Accelerator (VDLA) simulator (paper Section 6.4).

The VDLA is the paper's minimalist TPU-like accelerator: a tensor processor
with a GEMM core, explicitly managed on-chip memories (input / weight /
accumulator buffers and a micro-op SRAM), and a decoupled access-execute
(DAE) pipeline whose load, execute and store stages synchronise through
explicit dependence-token queues (Figures 9 and 20).

This module provides two layers:

* :func:`build_instruction_trace` — walks a lowered loop program and emits a
  per-pipeline-iteration instruction trace (LOAD / EXECUTE / STORE micro-ops
  with cycle costs derived from the data they move / compute).
* :class:`VDLAAccelerator` — an event-driven simulator of the DAE pipeline.
  With latency hiding (virtual threads → interleaved instruction stream with
  dependence tokens) the load and execute units overlap; without it the
  pipeline degenerates to the monolithic serial execution of Figure 9's left
  side.  Peak-utilisation numbers comparable to the paper's roofline
  (Figure 10) fall out of the simulation rather than being hard-coded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tir.analysis import ProgramFeatures, extract_features
from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Barrier,
    BufferStore,
    DepPop,
    DepPush,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
    dtype_bytes,
)
from .base import HardwareModel, HardwareParams, MeasureResult

__all__ = [
    "VDLAParams",
    "VDLAInstruction",
    "VDLAAccelerator",
    "build_instruction_trace",
    "pynq_vdla_params",
]


@dataclass
class VDLAParams(HardwareParams):
    """VDLA configuration matching the paper's PYNQ prototype."""

    frequency: float = 200e6
    gemm_rows: int = 16
    gemm_cols: int = 16
    #: multiply-accumulates retired per cycle by the GEMM core
    macs_per_cycle: int = 256
    #: DRAM <-> SRAM DMA bandwidth in bytes per cycle
    dma_bytes_per_cycle: float = 8.0
    inp_buffer_bytes: float = 32 << 10
    wgt_buffer_bytes: float = 32 << 10
    acc_buffer_bytes: float = 128 << 10
    uop_buffer_bytes: float = 32 << 10
    #: fixed overhead cycles per instruction (decode + queue management)
    instruction_overhead: float = 4.0


def pynq_vdla_params() -> VDLAParams:
    """The paper's PYNQ-board VDLA: 16x16 GEMM @ 200 MHz, ~102.4 GOPS peak."""
    return VDLAParams(
        name="vdla-pynq",
        frequency=200e6,
        peak_flops=102.4e9,
        dram_bandwidth=1.6e9,
        onchip_bandwidth=12.8e9,
        launch_overhead=1e-4,
        noise_std=0.02,
    )


@dataclass
class VDLAInstruction:
    """One micro-op in the accelerator's instruction stream."""

    stage: str                 # "ld" | "ex" | "st"
    cycles: float
    vthread: int = 0
    pushes: List[str] = field(default_factory=list)   # stages to notify
    pops: List[str] = field(default_factory=list)     # stages to wait on

    def __repr__(self) -> str:
        return f"{self.stage}({self.cycles:.0f}cyc, vt{self.vthread})"


def _classify_store(store: BufferStore) -> Optional[str]:
    scope = store.buffer.scope
    if scope in ("inp_buffer", "wgt_buffer"):
        return "ld"
    if scope in ("acc_buffer", "local"):
        return "ex"
    if scope == "global":
        return "st"
    return None


def build_instruction_trace(func: LoweredFunc, params: Optional[VDLAParams] = None,
                            max_unroll: int = 4096) -> List[VDLAInstruction]:
    """Flatten a lowered program into a VDLA instruction trace.

    Loops are unrolled up to ``max_unroll`` total iterations; beyond that the
    trace is truncated and the caller scales the simulated time (steady-state
    pipelines repeat the same pattern, so truncation preserves behaviour).
    """
    params = params or VDLAParams()
    trace: List[VDLAInstruction] = []
    vthread_of: List[int] = [0]

    def data_bytes(store: BufferStore, trip: float) -> float:
        return trip * dtype_bytes(store.buffer.dtype)

    def emit(stage: str, cycles: float) -> None:
        trace.append(VDLAInstruction(stage, cycles + params.instruction_overhead,
                                     vthread=vthread_of[-1]))

    def walk(stmt: Stmt, trip: float) -> None:
        if len(trace) >= max_unroll:
            return
        if isinstance(stmt, SeqStmt):
            for sub in stmt.stmts:
                walk(sub, trip)
            return
        if isinstance(stmt, For):
            try:
                extent = stmt.extent_value()
            except ValueError:
                extent = 1
            # A loop nest that only copies data into one pipeline stage's
            # buffers is a single DMA transfer (the paper's dma_copy2d /
            # fill_zero micro-ops), not one instruction per element.
            copy = _copy_loop_summary(stmt)
            if copy is not None:
                stage, elements, elem_bytes = copy
                if stage in ("ld", "st"):
                    emit(stage, elements * elem_bytes / params.dma_bytes_per_cycle)
                else:
                    emit(stage, elements / max(params.macs_per_cycle, 1.0))
                return
            body_instrs = _count_pipeline_ops(stmt.body)
            if body_instrs == 0:
                return
            # Unroll pipeline loops so the DAE simulator sees the real stream;
            # cap the expansion and let the caller scale the result.
            iterations = extent
            if len(trace) + iterations * body_instrs > max_unroll:
                iterations = max(1, (max_unroll - len(trace)) // max(body_instrs, 1))
            for _ in range(int(iterations)):
                walk(stmt.body, trip)
            if iterations < extent:
                # Record truncation by a scaling marker instruction.
                pass
            return
        if isinstance(stmt, IfThenElse):
            walk(stmt.then_body, trip)
            if stmt.else_body is not None:
                walk(stmt.else_body, trip)
            return
        if isinstance(stmt, (Allocate,)):
            walk(stmt.body, trip)
            return
        if isinstance(stmt, AttrStmt):
            if stmt.key == "vthread_instance":
                vthread_of.append(int(stmt.value))
                walk(stmt.body, trip)
                vthread_of.pop()
            else:
                walk(stmt.body, trip)
            return
        if isinstance(stmt, BufferStore):
            stage = _classify_store(stmt)
            if stage is None:
                return
            bytes_moved = data_bytes(stmt, 1.0)
            if stage in ("ld", "st"):
                emit(stage, bytes_moved / params.dma_bytes_per_cycle)
            else:
                emit(stage, 1.0)
            return
        if isinstance(stmt, IntrinsicStmt):
            macs = stmt.intrin.flop / 2.0
            emit("ex", macs / params.macs_per_cycle)
            return
        if isinstance(stmt, DepPush):
            if trace:
                trace[-1].pushes.append(f"{stmt.from_stage}->{stmt.to_stage}")
            return
        if isinstance(stmt, DepPop):
            # The pop attaches to the *next* instruction; mark it pending.
            trace.append(VDLAInstruction("pending_pop", 0.0,
                                         pops=[f"{stmt.from_stage}->{stmt.to_stage}"]))
            return
        if isinstance(stmt, (Barrier, Evaluate)):
            return

    walk(func.body, 1.0)

    # Fold the pending_pop markers into the instruction that follows them.
    folded: List[VDLAInstruction] = []
    pending: List[str] = []
    for instr in trace:
        if instr.stage == "pending_pop":
            pending.extend(instr.pops)
            continue
        if pending:
            instr.pops.extend(pending)
            pending = []
        folded.append(instr)
    return folded


def _copy_loop_summary(loop: For) -> Optional[Tuple[str, float, float]]:
    """If ``loop`` is a pure copy/initialisation nest feeding one pipeline
    stage, return ``(stage, total_elements, element_bytes)``; else ``None``.

    Such nests correspond to single DMA / fill micro-ops on the accelerator
    (Figure 5's ``vdla.dma_copy2d`` and ``vdla.fill_zero``), so the trace
    builder emits one instruction for the whole nest.
    """
    stages: set = set()
    elem_bytes: List[float] = []
    elements = [0.0]

    def scan(stmt: Stmt, trip: float) -> bool:
        if isinstance(stmt, SeqStmt):
            return all(scan(sub, trip) for sub in stmt.stmts)
        if isinstance(stmt, For):
            try:
                extent = stmt.extent_value()
            except ValueError:
                extent = 1
            return scan(stmt.body, trip * max(extent, 1))
        if isinstance(stmt, IfThenElse):
            ok = scan(stmt.then_body, trip)
            if stmt.else_body is not None:
                ok = ok and scan(stmt.else_body, trip)
            return ok
        if isinstance(stmt, (Allocate, AttrStmt)):
            return scan(stmt.body, trip)
        if isinstance(stmt, BufferStore):
            stage = _classify_store(stmt)
            if stage is None:
                return False
            stages.add(stage)
            elements[0] += trip
            elem_bytes.append(dtype_bytes(stmt.buffer.dtype))
            return True
        if isinstance(stmt, (Barrier, Evaluate)):
            return True
        return False  # intrinsics / dependence tokens end the copy pattern

    try:
        extent = loop.extent_value()
    except ValueError:
        extent = 1
    if not scan(loop.body, float(max(extent, 1))):
        return None
    if len(stages) != 1 or not elements[0]:
        return None
    return next(iter(stages)), elements[0], max(elem_bytes)


def _count_pipeline_ops(stmt: Stmt) -> int:
    count = 0
    stack = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (BufferStore, IntrinsicStmt)):
            count += 1
        if isinstance(node, SeqStmt):
            stack.extend(node.stmts)
        elif isinstance(node, For):
            stack.append(node.body)
        elif isinstance(node, IfThenElse):
            stack.append(node.then_body)
            if node.else_body is not None:
                stack.append(node.else_body)
        elif isinstance(node, (Allocate, AttrStmt)):
            stack.append(node.body)
    return count


@dataclass
class PipelineResult:
    """Outcome of a DAE pipeline simulation."""

    total_cycles: float
    busy_cycles: Dict[str, float]
    instructions: int

    def utilization(self, stage: str = "ex") -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(self.busy_cycles.get(stage, 0.0) / self.total_cycles, 1.0)


class VDLAAccelerator(HardwareModel):
    """Event-driven decoupled access-execute pipeline simulator."""

    device_type = "vdla"

    def __init__(self, params: Optional[VDLAParams] = None, seed: int = 0):
        super().__init__(params or pynq_vdla_params(), seed)
        self.vdla: VDLAParams = self.params  # type: ignore[assignment]

    # ------------------------------------------------------------------ pipeline
    def simulate_trace(self, trace: Sequence[VDLAInstruction],
                       latency_hiding: bool = True) -> PipelineResult:
        """Simulate the instruction trace through the ld/ex/st pipeline.

        With ``latency_hiding`` each functional unit consumes its own
        instruction queue and only waits when an explicit dependence token
        forces it to; without it, instructions execute strictly in program
        order (monolithic pipeline).
        """
        units = {"ld": 0.0, "ex": 0.0, "st": 0.0}
        busy = {"ld": 0.0, "ex": 0.0, "st": 0.0}
        if not trace:
            return PipelineResult(0.0, busy, 0)

        if not latency_hiding:
            clock = 0.0
            for instr in trace:
                if instr.stage not in units:
                    continue
                clock += instr.cycles
                busy[instr.stage] += instr.cycles
            return PipelineResult(clock, busy, len(trace))

        # Token queues: completion times of pushed tokens per edge.
        tokens: Dict[str, List[float]] = {}
        for instr in trace:
            if instr.stage not in units:
                continue
            unit_free = units[instr.stage]
            start = unit_free
            for edge in instr.pops:
                # Wait for the producer's token if one is available, otherwise
                # the dependence is unsatisfiable in-order and we serialise.
                queue = tokens.get(edge, [])
                if queue:
                    start = max(start, queue.pop(0))
                else:
                    start = max(start, max(units.values()))
            finish = start + instr.cycles
            units[instr.stage] = finish
            busy[instr.stage] += instr.cycles
            for edge in instr.pushes:
                tokens.setdefault(edge, []).append(finish)
        total = max(units.values())
        return PipelineResult(total, busy, len(trace))

    # ------------------------------------------------------------------ model
    def estimate(self, features: ProgramFeatures) -> float:
        """Feature-level fallback estimate (used by the generic tuner path)."""
        vdla = self.vdla
        macs = (features.intrinsic_flops + features.flops) / 2.0
        compute_cycles = macs / vdla.macs_per_cycle
        dma_bytes = features.bytes_in_scope("global")
        dma_cycles = dma_bytes / vdla.dma_bytes_per_cycle
        overlap = features.vthread_extent > 1 or features.dep_token_count > 0
        if overlap:
            cycles = max(compute_cycles, dma_cycles) * 1.08
        else:
            cycles = compute_cycles + dma_cycles
        cycles += features.intrinsic_calls * vdla.instruction_overhead
        return cycles / vdla.frequency + vdla.launch_overhead

    def estimate_func(self, func: LoweredFunc, latency_hiding: Optional[bool] = None) -> float:
        """Cycle-level estimate by simulating the lowered program's trace."""
        features = extract_features(func)
        trace = build_instruction_trace(func, self.vdla)
        if latency_hiding is None:
            latency_hiding = features.vthread_extent > 1 or features.dep_token_count > 0
        result = self.simulate_trace(trace, latency_hiding=latency_hiding)
        simulated_ops = max(result.busy_cycles.get("ex", 0.0), 1.0)
        # Scale up if the trace was truncated: compare simulated compute work
        # against the program's total work.
        total_compute_cycles = (features.intrinsic_flops + features.flops) / 2.0 \
            / self.vdla.macs_per_cycle
        scale = max(total_compute_cycles / simulated_ops, 1.0)
        cycles = result.total_cycles * scale
        return cycles / self.vdla.frequency + self.vdla.launch_overhead

    def roofline_point(self, func: LoweredFunc,
                       latency_hiding: bool = True) -> Tuple[float, float]:
        """Return (operational intensity [ops/byte], achieved GOPS) for a
        lowered program — the coordinates of one dot in Figure 10."""
        features = extract_features(func)
        time = self.estimate_func(func, latency_hiding=latency_hiding)
        ops = features.intrinsic_flops + features.flops
        dram_bytes = max(features.bytes_in_scope("global"), 1.0)
        intensity = ops / dram_bytes
        gops = ops / time / 1e9
        return intensity, gops

    def compute_utilization(self, func: LoweredFunc, latency_hiding: bool = True) -> float:
        """Fraction of peak compute achieved (Figure 10's utilisation numbers)."""
        features = extract_features(func)
        time = self.estimate_func(func, latency_hiding=latency_hiding)
        ops = features.intrinsic_flops + features.flops
        peak_ops = self.vdla.peak_flops * time
        if peak_ops <= 0:
            return 0.0
        return min(ops / peak_ops, 1.0)
