"""Tune the model zoo against one shared tuning service.

:func:`schedule_zoo` is the fleet driver: it runs a tuning session per
model-zoo network, all pointed at the same :class:`TuningService`, so
workloads shared between networks (and between invocations, when the
service persists its database) are measured once, transfer across shapes,
and pretrain the service's cost models for the next run.  It reports the
two throughput numbers the service exists to improve — wall seconds per
measurement trial, and trials needed to reach each workload's best — as
JSON-ready rows (``benchmarks/bench_tuning.py`` wraps this into
``BENCH_tuning.json``).
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, List, Optional, Sequence

from ..options import TuningOptions

__all__ = ["schedule_zoo", "trials_to_target", "DEFAULT_ZOO"]

#: zoo networks tuned by default — one large CNN, one mobile CNN, one MLP-ish
#: control net; enough shape diversity to exercise cross-model sharing
DEFAULT_ZOO = ("resnet-18", "mobilenet", "dqn")


def trials_to_target(curve: Sequence[float], target_time: float,
                     rtol: float = 0.05) -> Optional[int]:
    """First (1-based) trial whose best-so-far time is within ``rtol`` of
    ``target_time`` — the convergence-speed metric of a tuning curve.
    ``None`` when the curve never gets there."""
    if not curve or not math.isfinite(target_time):
        return None
    threshold = target_time * (1.0 + rtol)
    for trial, value in enumerate(curve):
        if value <= threshold:
            return trial + 1
    return None


def schedule_zoo(models: Sequence[str] = DEFAULT_ZOO, target: str = "cuda",
                 service=None, trials: int = 16,
                 options: Optional[TuningOptions] = None,
                 output_path: Optional[str] = None) -> Dict[str, object]:
    """Tune every model in ``models`` against one shared tuning service.

    Parameters
    ----------
    models:
        Model-zoo names (anything :func:`repro.autotune` accepts by name).
    target:
        Target short name or :class:`~repro.hardware.target.Target`.
    service:
        A running :class:`~repro.autotvm.service.TuningService`, a
        ``"host:port"`` address, or ``None`` to boot a private in-memory
        service just for this drive (stopped before returning).
    trials / options:
        Per-task trial budget and the remaining session knobs.
    output_path:
        When given, the returned document is also written there as JSON
        (the ``BENCH_tuning.json`` artifact).

    Returns a JSON-ready document: one row per (model, workload) with
    ``seconds_per_trial`` and ``trials_to_target``, plus the service's
    final counters.
    """
    import repro

    from .server import TuningService

    owned_service: Optional[TuningService] = None
    if service is None:
        service = owned_service = TuningService().start()
    address = service if isinstance(service, str) else service.address

    opts = (options or TuningOptions()).overridden(trials=trials,
                                                   service=address)
    rows: List[Dict[str, object]] = []
    stats: Optional[Dict[str, int]] = None
    started = time.perf_counter()
    try:
        for model in models:
            report = repro.autotune(model, target=target, options=opts)
            stats = report.service_stats
            for result in report:
                per_trial = (result.elapsed / result.trials
                             if result.trials else float("nan"))
                rows.append({
                    "model": model,
                    "workload": result.task_name,
                    "space": len(result.task.config_space),
                    "trials": result.trials,
                    "elapsed_s": round(result.elapsed, 4),
                    "seconds_per_trial": round(per_trial, 6),
                    "best_time_s": result.estimate,
                    # convergence speed: trials to get within 5% of the best
                    # measured time this session ends at
                    "trials_to_target": trials_to_target(result.curve,
                                                         result.best_time),
                    "dedup_hits": result.dedup_hits,
                    "warm_samples": result.warm_samples,
                    "pretrained": result.pretrained,
                    "floored": result.floored,
                })
    finally:
        if owned_service is not None:
            owned_service.stop()

    document = {
        "target": target if isinstance(target, str) else target.name,
        "models": list(models),
        "trials": trials,
        "elapsed_s": round(time.perf_counter() - started, 3),
        "workloads": rows,
        "service_stats": stats,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    return document
