"""Shared memoization service for the candidate-evaluation fast path.

The hottest loop in the system — lower a candidate schedule, featurise the
loop program, score it (paper §5.2–5.3) — is driven from four independent
places: the model-based tuner, the measurer, the compiler's fallback
heuristic, and kernel-time estimation.  Lowering and featurisation are
deterministic per ``(task name, target name, config index)``, so all of them
share the two bounded LRU caches in this module through
:meth:`repro.autotvm.Task.lowered` / :meth:`~repro.autotvm.Task.features_of`.

Unlike the dict it replaced (whose "eviction" dropped all 50k entries at
once), the caches evict one least-recently-used entry at a time, so a long
tuning session keeps its working set hot.  Failures are cached too: a config
whose schedule cannot be lowered raises the *same* exception object on every
evaluation instead of re-running the failing lowering.

Thread safety: the parallel measurer featurises configs from worker threads,
so every cache operation takes the cache's lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["LRUCache", "LOWERED_CACHE", "FEATURE_CACHE", "clear_eval_caches",
           "eval_cache_stats", "configure_eval_caches"]

_MISSING = object()


class LRUCache:
    """A small thread-safe least-recently-used cache."""

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default=None):
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def resize(self, maxsize: int) -> None:
        with self._lock:
            self.maxsize = int(maxsize)
            while len(self._data) > max(self.maxsize, 0):
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self._data), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        s = self.stats()
        return (f"LRUCache(size={s['size']}/{s['maxsize']}, "
                f"hits={s['hits']}, misses={s['misses']})")


#: lowered functions are bulkier than feature summaries, so their cache is
#: kept an order of magnitude smaller
LOWERED_CACHE = LRUCache(2_048)
#: extracted :class:`~repro.tir.analysis.ProgramFeatures` per config
FEATURE_CACHE = LRUCache(50_000)


def clear_eval_caches() -> None:
    """Drop all shared lowering/featurisation state (tests, benchmarks)."""
    from ..te.expr import _Simplifier

    LOWERED_CACHE.clear()
    FEATURE_CACHE.clear()
    # The simplifier memo pins expression nodes process-wide; release them
    # together with the evaluation caches they fed.
    _Simplifier._MEMO.clear()


def eval_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters of the shared caches (observability hook)."""
    return {"lowered": LOWERED_CACHE.stats(), "features": FEATURE_CACHE.stats()}


def configure_eval_caches(features: Optional[int] = None,
                          lowered: Optional[int] = None) -> None:
    """Resize the shared caches (``0`` disables caching entirely)."""
    if features is not None:
        FEATURE_CACHE.resize(features)
    if lowered is not None:
        LOWERED_CACHE.resize(lowered)
