"""Pass-pipeline integration of the graph verifier.

:class:`VerifyInstrument` is a
:class:`~repro.compiler.instruments.PassInstrument` that re-checks every
graph-level invariant after each executed pass, so a pass that corrupts the
IR is caught *immediately* — the raised
:class:`~repro.analysis.errors.VerifierError` names both the failing check
and the pass that produced the broken state, instead of the corruption
surfacing as a confusing failure many passes later (or as silently wrong
simulated latencies).

Enable it per compilation with ``repro.compile(..., verify=True)`` or for a
whole scope with ``PassContext(config={"verify": True})``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..compiler.instruments import PassInstrument
from .graph_verify import verify_graph

if TYPE_CHECKING:
    from ..compiler.pass_manager import CompileState, PassInfo

__all__ = ["VerifyInstrument"]


class VerifyInstrument(PassInstrument):
    """Runs :func:`~repro.analysis.graph_verify.verify_graph` after every
    pass (and once on the initial graph, via ``run_before_pass`` of the first
    pass) so the offending pass is named in the error.

    ``dtype_bytes`` mirrors the ``plan_memory.dtype_bytes`` config knob: the
    memory-plan alias audit must size tensors with the same element width
    the planner used, or reuse that is legal under uniform sizing would be
    reported as an overlap.
    """

    name = "verify"

    def __init__(self, dtype_bytes: Optional[int] = None) -> None:
        self.dtype_bytes = dtype_bytes
        self.passes_verified = 0
        self._checked_initial = False

    def reset(self) -> None:
        self.passes_verified = 0
        self._checked_initial = False

    def _verify(self, state: "CompileState",
                pass_name: Optional[str]) -> None:
        verify_graph(state.graph, groups=state.groups,
                     memory_plan=state.memory_plan,
                     dtype_bytes=self.dtype_bytes, pass_name=pass_name)

    def run_before_pass(self, pass_info: "PassInfo",
                        state: "CompileState") -> None:
        if not self._checked_initial:
            # Catch a malformed *input* graph before blaming the first pass.
            self._checked_initial = True
            self._verify(state, None)

    def run_after_pass(self, pass_info: "PassInfo", state: "CompileState",
                       seconds: float) -> None:
        self._verify(state, pass_info.name)
        self.passes_verified += 1
