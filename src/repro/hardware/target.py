"""Compilation targets.

A :class:`Target` names a hardware back-end, carries the simulated device
model used for measurement, and exposes the scheduling capabilities listed in
Figure 6 of the paper (which schedule primitives each back-end uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .base import HardwareModel
from .cpu import EmbeddedCPU, arm_a53_params, cortex_a9_params
from .gpu import MobileGPU, ServerGPU, mali_t860_params, titan_x_params
from .vdla import VDLAAccelerator, pynq_vdla_params

__all__ = ["Target", "cuda", "arm_cpu", "pynq_cpu", "mali", "vdla",
           "create_target", "known_targets", "target_from_spec",
           "SCHEDULE_PRIMITIVE_SUPPORT"]


#: Figure 6: which schedule primitives each back-end's schedules use.
SCHEDULE_PRIMITIVE_SUPPORT: Dict[str, Dict[str, bool]] = {
    "cpu": {
        "loop_transformations": True,
        "thread_binding": True,
        "compute_locality": True,
        "special_memory_scope": False,
        "tensorization": True,
        "latency_hiding": False,
    },
    "gpu": {
        "loop_transformations": True,
        "thread_binding": True,
        "compute_locality": True,
        "special_memory_scope": True,
        "tensorization": True,
        "latency_hiding": False,
    },
    "accel": {
        "loop_transformations": True,
        "thread_binding": True,
        "compute_locality": True,
        "special_memory_scope": True,
        "tensorization": True,
        "latency_hiding": True,
    },
}


@dataclass
class Target:
    """A compilation target: name, device kind and simulated device model."""

    name: str
    device_type: str                     # cpu | gpu | mali | vdla
    model: HardwareModel
    keys: Tuple[str, ...] = ()
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def primitive_support(self) -> Dict[str, bool]:
        if self.device_type in ("gpu", "mali"):
            return SCHEDULE_PRIMITIVE_SUPPORT["gpu"]
        if self.device_type == "vdla":
            return SCHEDULE_PRIMITIVE_SUPPORT["accel"]
        return SCHEDULE_PRIMITIVE_SUPPORT["cpu"]

    @property
    def max_threads_per_block(self) -> int:
        return int(getattr(self.model.params, "max_threads_per_block", 1024))

    @property
    def num_cores(self) -> int:
        return int(getattr(self.model.params, "num_cores", 1))

    @property
    def seed(self) -> int:
        """Measurement-noise seed of the simulated device model."""
        return int(getattr(self.model, "_seed", 0))

    def spec(self) -> Dict[str, object]:
        """A JSON-serialisable description sufficient to rebuild the target
        (used by the module artifact format)."""
        return {"name": self.name, "device_type": self.device_type,
                "seed": self.seed}

    def __repr__(self) -> str:
        return f"Target({self.name})"


def cuda(seed: int = 0) -> Target:
    """Server-class GPU target (simulated NVIDIA Titan X)."""
    return Target("cuda", "gpu", ServerGPU(titan_x_params(), seed),
                  keys=("cuda", "gpu"))


def mali(seed: int = 0) -> Target:
    """Mobile GPU target (simulated ARM Mali-T860MP4)."""
    return Target("opencl -device=mali", "mali", MobileGPU(mali_t860_params(), seed),
                  keys=("mali", "opencl", "gpu"))


def arm_cpu(seed: int = 0) -> Target:
    """Embedded CPU target (simulated quad-core ARM Cortex A53)."""
    return Target("llvm -device=arm_cpu", "cpu", EmbeddedCPU(arm_a53_params(), seed),
                  keys=("arm_cpu", "cpu"))


def pynq_cpu(seed: int = 0) -> Target:
    """Host CPU of the FPGA platform (simulated dual-core ARM Cortex A9)."""
    return Target("llvm -device=arm_cpu -model=pynq", "cpu",
                  EmbeddedCPU(cortex_a9_params(), seed),
                  keys=("pynq_cpu", "arm_cpu", "cpu"))


def vdla(seed: int = 0) -> Target:
    """FPGA-based Vanilla Deep Learning Accelerator target."""
    return Target("vdla", "vdla", VDLAAccelerator(pynq_vdla_params(), seed),
                  keys=("vdla", "accel"))


_FACTORIES = {
    "cuda": cuda,
    "gpu": cuda,
    "mali": mali,
    "arm_cpu": arm_cpu,
    "cpu": arm_cpu,
    "llvm": arm_cpu,
    "pynq_cpu": pynq_cpu,
    "vdla": vdla,
}


#: full canonical target names (``Target.name``) back to their factories, so
#: names recorded in artifacts round-trip exactly (``llvm -device=arm_cpu
#: -model=pynq`` must not degrade to the generic ``arm_cpu`` profile).
_CANONICAL_NAMES = {
    "cuda": cuda,
    "opencl -device=mali": mali,
    "llvm -device=arm_cpu": arm_cpu,
    "llvm -device=arm_cpu -model=pynq": pynq_cpu,
    "vdla": vdla,
}


def known_targets() -> Tuple[str, ...]:
    """Short names plus canonical full names accepted by :func:`create_target`."""
    return tuple(sorted(set(_FACTORIES) | set(_CANONICAL_NAMES)))


def create_target(name: str, seed: int = 0) -> Target:
    """Create a target from a short name (``cuda``, ``arm_cpu``, ``mali``,
    ``vdla``) or a canonical full name such as ``llvm -device=arm_cpu``."""
    if name in _CANONICAL_NAMES:
        return _CANONICAL_NAMES[name](seed)
    key = name.split()[0].lower()
    if key not in _FACTORIES:
        raise ValueError(f"Unknown target {name!r}; expected one of {sorted(_FACTORIES)}")
    return _FACTORIES[key](seed)


def target_from_spec(spec: Dict[str, object]) -> Target:
    """Rebuild a target from :meth:`Target.spec`, verifying the device kind.

    Raises :class:`ValueError` with the known target names when the recorded
    target does not exist in this build, or when the rebuilt device kind
    disagrees with the recorded one (a target mismatch, e.g. an artifact from
    a build where the name meant different hardware).
    """
    name = spec.get("name")
    if not isinstance(name, str):
        raise ValueError(f"Invalid target spec {spec!r}: missing 'name'")
    try:
        target = create_target(name, seed=int(spec.get("seed", 0)))
    except ValueError:
        raise ValueError(
            f"Target {name!r} is not known to this build; known targets: "
            f"{list(known_targets())}") from None
    recorded = spec.get("device_type")
    if recorded is not None and recorded != target.device_type:
        raise ValueError(
            f"Target mismatch: the artifact records {name!r} as device type "
            f"{recorded!r} but this build maps it to {target.device_type!r}")
    return target
