"""Model zoo: the five inference workloads used in the paper's evaluation.

* ResNet-18 (He et al.) — image classification, the paper's main CNN workload.
* MobileNet (Howard et al.) — depthwise-separable convolutions.
* LSTM language model (Zaremba et al.) — recurrent workload.
* Deep Q Network (Mnih et al.) — the Nature DQN with its unconventional
  4x4-stride-2 convolution that vendor libraries optimise poorly.
* DCGAN generator (Radford et al.) — transposed convolutions.

Every constructor returns ``(graph, params, input_shapes)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..graph.ir import Graph
from .builder import ModelBuilder

__all__ = ["resnet18", "mobilenet", "lstm_language_model", "dqn", "dcgan_generator",
           "get_model", "MODEL_REGISTRY"]

ModelResult = Tuple[Graph, Dict[str, np.ndarray], Dict[str, Tuple[int, ...]]]


def resnet18(batch: int = 1, image_size: int = 224, num_classes: int = 1000,
             dtype: str = "float32") -> ModelResult:
    """ResNet-18 with identity-mapping residual blocks."""
    b = ModelBuilder("resnet18", seed=1, dtype=dtype)
    data = b.input("data", (batch, 3, image_size, image_size))
    net = b.conv_bn_relu(data, 64, 7, stride=2, padding=3, name="conv0")
    net = b.max_pool2d(net, pool_size=3, stride=2, padding=1)

    def residual_block(net, channels, stride, name, project=False):
        identity = net
        out = b.conv_bn_relu(net, channels, 3, stride=stride, padding=1,
                             name=f"{name}_conv1")
        out = b.batch_norm(b.conv2d(out, channels, 3, stride=1, padding=1,
                                    name=f"{name}_conv2"))
        if project or stride != 1 or identity.shape[1] != channels:
            identity = b.batch_norm(b.conv2d(identity, channels, 1, stride=stride,
                                             padding=0, name=f"{name}_down"))
        return b.relu(b.add(out, identity))

    stages = [(64, 1), (64, 1), (128, 2), (128, 1),
              (256, 2), (256, 1), (512, 2), (512, 1)]
    for index, (channels, stride) in enumerate(stages):
        # The first block uses a 1x1 projection shortcut (Table 2's C3 layer).
        net = residual_block(net, channels, stride, f"block{index}",
                             project=(index == 0))
    net = b.global_avg_pool2d(net)
    net = b.dense(net, num_classes, "fc")
    net = b.softmax(net)
    graph, params = b.finalize(net)
    return graph, params, {"data": (batch, 3, image_size, image_size)}


def mobilenet(batch: int = 1, image_size: int = 224, num_classes: int = 1000,
              alpha: float = 1.0, dtype: str = "float32") -> ModelResult:
    """MobileNet v1: depthwise separable convolutions."""
    b = ModelBuilder("mobilenet", seed=2, dtype=dtype)
    data = b.input("data", (batch, 3, image_size, image_size))

    def separable(net, out_channels, stride, name):
        net = b.depthwise_conv2d(net, 3, stride=stride, padding=1, name=f"{name}_dw")
        net = b.relu(b.batch_norm(net))
        net = b.conv2d(net, out_channels, 1, stride=1, padding=0, name=f"{name}_pw")
        return b.relu(b.batch_norm(net))

    def channels(value: int) -> int:
        return max(int(value * alpha), 8)

    net = b.conv_bn_relu(data, channels(32), 3, stride=2, padding=1, name="conv0")
    plan = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
            (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1)]
    for index, (out_channels, stride) in enumerate(plan):
        net = separable(net, channels(out_channels), stride, f"sep{index}")
    net = b.global_avg_pool2d(net)
    net = b.dense(net, num_classes, "fc")
    net = b.softmax(net)
    graph, params = b.finalize(net)
    return graph, params, {"data": (batch, 3, image_size, image_size)}


def lstm_language_model(batch: int = 1, hidden_size: int = 128, seq_len: int = 4,
                        vocab_size: int = 10000, num_layers: int = 2,
                        dtype: str = "float32") -> ModelResult:
    """The LSTM language model workload (unrolled for ``seq_len`` steps)."""
    b = ModelBuilder("lstm_lm", seed=3, dtype=dtype)
    inputs = {}
    embedded = []
    for t in range(seq_len):
        node = b.input(f"x{t}", (batch, hidden_size))
        inputs[f"x{t}"] = (batch, hidden_size)
        embedded.append(node)
    hidden = [b.input(f"h0_l{l}", (batch, hidden_size)) for l in range(num_layers)]
    cell = [b.input(f"c0_l{l}", (batch, hidden_size)) for l in range(num_layers)]
    for l in range(num_layers):
        inputs[f"h0_l{l}"] = (batch, hidden_size)
        inputs[f"c0_l{l}"] = (batch, hidden_size)

    out = None
    for t in range(seq_len):
        layer_input = embedded[t]
        for l in range(num_layers):
            hidden[l], cell[l] = b.lstm_cell(layer_input, hidden[l], cell[l],
                                             hidden_size, name=f"lstm_t{t}_l{l}")
            layer_input = hidden[l]
        out = layer_input
    logits = b.dense(out, vocab_size, "decoder")
    prob = b.softmax(logits)
    graph, params = b.finalize(prob)
    return graph, params, inputs


def dqn(batch: int = 1, dtype: str = "float32") -> ModelResult:
    """The Nature DQN: 84x84x4 input, three conv layers, two dense layers.

    The second convolution (4x4 kernel, stride 2) is the unconventional
    operator responsible for TVM's largest end-to-end speedup in Figure 14.
    """
    b = ModelBuilder("dqn", seed=4, dtype=dtype)
    data = b.input("data", (batch, 4, 84, 84))
    net = b.relu(b.bias_add(b.conv2d(data, 32, 8, stride=4, padding=0, name="conv1")))
    net = b.relu(b.bias_add(b.conv2d(net, 64, 4, stride=2, padding=0, name="conv2")))
    net = b.relu(b.bias_add(b.conv2d(net, 64, 3, stride=1, padding=0, name="conv3")))
    net = b.flatten(net)
    net = b.relu(b.dense(net, 512, "fc1"))
    net = b.dense(net, 18, "fc2")
    graph, params = b.finalize(net)
    return graph, params, {"data": (batch, 4, 84, 84)}


def dcgan_generator(batch: int = 1, latent: int = 100, dtype: str = "float32"
                    ) -> ModelResult:
    """DCGAN generator: dense projection followed by strided deconvolutions."""
    b = ModelBuilder("dcgan", seed=5, dtype=dtype)
    noise = b.input("noise", (batch, latent))
    net = b.dense(noise, 1024 * 4 * 4, "project")
    net = b.reshape(net, (batch, 1024, 4, 4))
    for index, channels in enumerate((512, 256, 128)):
        net = b.conv2d_transpose(net, channels, 4, stride=2, padding=1,
                                 name=f"deconv{index}")
        net = b.relu(b.batch_norm(net))
    net = b.conv2d_transpose(net, 3, 4, stride=2, padding=1, name="deconv_out")
    net = b.tanh(net)
    graph, params = b.finalize(net)
    return graph, params, {"noise": (batch, latent)}


MODEL_REGISTRY = {
    "resnet-18": resnet18,
    "mobilenet": mobilenet,
    "lstm-lm": lstm_language_model,
    "dqn": dqn,
    "dcgan": dcgan_generator,
}


def _canonical(name: str) -> str:
    """Registry lookup key: case/separator-insensitive (``resnet18`` ==
    ``resnet-18`` == ``ResNet_18``)."""
    return name.lower().replace("-", "").replace("_", "")


def get_model(name: str, **kwargs) -> ModelResult:
    """Construct a model from the registry by name."""
    # Built per call so runtime MODEL_REGISTRY additions are seen; the
    # registry is a handful of entries, so this costs nothing next to the
    # model build itself.
    by_canonical: Dict[str, Callable] = {}
    for key, builder in MODEL_REGISTRY.items():
        canonical = _canonical(key)
        if canonical in by_canonical:
            raise ValueError(
                f"Model registry keys collide under canonicalisation: "
                f"{key!r} vs an earlier entry (both -> {canonical!r})")
        by_canonical[canonical] = builder
    builder = by_canonical.get(_canonical(name))
    if builder is None:
        raise KeyError(f"Unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return builder(**kwargs)
