"""The standard graph-optimization passes, registered by name.

Each pass wraps one of the rewrites in :mod:`repro.graph.passes` /
:mod:`repro.graph.simplify` with the :class:`~repro.compiler.pass_manager.Pass`
interface: a registry name, the opt-level gate that reproduces the legacy
``graph.build(opt_level=...)`` semantics, and required/invalidated analyses so
the pass manager re-infers shapes automatically after rewrites.

Opt-level gates (matching the legacy monolithic ``build``):

* level >= 1 — ``fold_constants``
* level >= 2 — ``simplify_inference``, ``alter_layout``, ``fuse_ops``
* always     — ``plan_memory`` (disable by name to ablate storage reuse)

``eliminate_common_subexpr`` and ``dead_code_elimination`` are registered but
not part of the default pipeline; enable them per-compilation via
``PassContext(extra_passes=["eliminate_common_subexpr"])``.
"""

from __future__ import annotations

from ..graph.passes import alter_layout as _alter_layout
from ..graph.passes import fold_constants as _fold_constants
from ..graph.passes import fuse_ops as _fuse_ops
from ..graph.passes import plan_memory as _plan_memory
from ..graph.simplify import dead_code_elimination as _dead_code_elimination
from ..graph.simplify import eliminate_common_subexpr as _eliminate_common_subexpr
from ..graph.simplify import simplify_inference as _simplify_inference
from .pass_context import PassContext
from .pass_manager import CompileState, register_pass

__all__ = ["fold_constants", "simplify_inference", "alter_layout", "fuse_ops",
           "plan_memory", "eliminate_common_subexpr", "dead_code_elimination"]


@register_pass("fold_constants", opt_level=1, invalidates=("shapes",))
def fold_constants(state: CompileState, ctx: PassContext) -> None:
    """Pre-compute sub-graphs that depend only on parameters."""
    state.graph, state.params = _fold_constants(state.graph, state.params)
    state.stats["fold_count"] = getattr(state.graph, "fold_count", 0)


@register_pass("simplify_inference", opt_level=2, invalidates=("shapes",))
def simplify_inference(state: CompileState, ctx: PassContext) -> None:
    """Fold batch norms into producers and drop inference no-ops."""
    epsilon = float(ctx.config.get("simplify_inference.epsilon", 1e-5))
    state.graph, state.params, folded = _simplify_inference(
        state.graph, state.params, epsilon=epsilon)
    state.stats["bn_folds"] = folded


@register_pass("alter_layout", opt_level=2, invalidates=("shapes",))
def alter_layout(state: CompileState, ctx: PassContext) -> None:
    """Annotate back-end preferred layouts, inserting transform nodes."""
    state.graph, inserted = _alter_layout(state.graph, state.target.device_type)
    state.stats["layout_transforms"] = inserted


@register_pass("fuse_ops", opt_level=2)
def fuse_ops(state: CompileState, ctx: PassContext) -> None:
    """Partition operators into fused kernels (Section 3's four rules).

    When this pass is disabled — low opt level or
    ``PassContext(disabled_passes=["fuse_ops"])``, the paper's "TVM w/o graph
    opt" ablation — the code generator falls back to one kernel per operator.
    """
    state.groups = _fuse_ops(state.graph, enabled=True)
    state.stats["fused_groups"] = len(state.groups)


@register_pass("plan_memory", opt_level=0)
def plan_memory(state: CompileState, ctx: PassContext) -> None:
    """Static memory planning: liveness analysis + greedy storage reuse."""
    configured = ctx.config.get("plan_memory.dtype_bytes")
    dtype_bytes = None if configured is None else int(configured)
    state.memory_plan = _plan_memory(state.graph, dtype_bytes=dtype_bytes)


@register_pass("eliminate_common_subexpr", opt_level=2, invalidates=("shapes",))
def eliminate_common_subexpr(state: CompileState, ctx: PassContext) -> None:
    """Merge structurally identical operator nodes."""
    state.graph, merged = _eliminate_common_subexpr(state.graph)
    state.stats["cse_merged"] = merged


@register_pass("dead_code_elimination", opt_level=2, invalidates=("shapes",))
def dead_code_elimination(state: CompileState, ctx: PassContext) -> None:
    """Drop operator nodes that cannot reach a graph output."""
    state.graph, removed = _dead_code_elimination(state.graph)
    state.stats["dce_removed"] = removed
