"""The deployable compilation artefact returned by :func:`repro.compile`.

A :class:`CompiledModule` is the *single* object the new compilation pipeline
hands back: optimized graph, per-group kernels, bound parameters, the static
memory plan, and the per-pass instrumentation records gathered while the
module was built.  It also knows how to persist itself as a versioned
artifact bundle (``export``, restored by ``repro.load``; ``save``/``load``
are deprecation shims over the same format) and how to construct its own
executor (``executor``), so callers no longer juggle the legacy
``(graph, module, params)`` 3-tuple.

This module deliberately has no eager intra-package imports: it sits below
both :mod:`repro.graph` and :mod:`repro.runtime` in the import graph, which
is what lets ``graph.build`` re-export these classes without a cycle.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # imports for annotations only — see module docstring
    from ..graph.ir import Graph
    from ..graph.passes import FusedGroup, MemoryPlan
    from ..hardware.target import Target
    from ..runtime.graph_executor import GraphExecutor
    from ..runtime.ndarray import Device
    from .instruments import PassRecord

__all__ = ["CompiledKernel", "CompiledModule"]

#: magic header checked by :meth:`CompiledModule.load`
_SAVE_FORMAT = "repro-compiled-module"
_SAVE_VERSION = 1


@dataclass
class CompiledKernel:
    """One fused group compiled for the target."""

    group: "FusedGroup"
    time_seconds: float
    device: str
    #: the master operator's schedule came from the tuning history
    tuned: bool = False
    #: flat index of the schedule configuration used for the master operator
    #: (tuned or fallback), recorded for artifact provenance
    config_index: Optional[int] = None

    @property
    def name(self) -> str:
        return self.group.name

    def run(self, tensors: Dict[str, np.ndarray]) -> None:
        """Execute the group's operators with NumPy semantics.

        ``tensors`` maps node names to arrays; results are stored back by
        node name.
        """
        from ..graph.ops import OP_REGISTRY

        for node in self.group.nodes:
            inputs = [tensors[p.name] for p in node.inputs]
            spec = OP_REGISTRY[node.op]
            tensors[node.name] = spec.compute(*inputs, node.attrs)


@dataclass
class CompiledModule:
    """A deployable module: optimized graph + kernels + parameters."""

    graph: "Graph"
    kernels: List[CompiledKernel]
    params: Dict[str, np.ndarray]
    target: "Target"
    memory_plan: "MemoryPlan"
    opt_level: int
    layout_transforms: int = 0
    pass_records: List["PassRecord"] = field(default_factory=list)

    # ------------------------------------------------------------- reporting
    @property
    def total_time(self) -> float:
        return sum(k.time_seconds for k in self.kernels)

    @property
    def tuned_kernels(self) -> int:
        """How many kernels used a configuration from the tuning history."""
        return sum(1 for k in self.kernels if getattr(k, "tuned", False))

    def time_by_operator(self) -> Dict[str, float]:
        """Aggregate estimated time per operator type (for breakdowns)."""
        breakdown: Dict[str, float] = {}
        for kernel in self.kernels:
            op = kernel.group.master.op
            breakdown[op] = breakdown.get(op, 0.0) + kernel.time_seconds
        return breakdown

    def pass_timings(self) -> Dict[str, float]:
        """Wall-clock seconds spent in each executed compilation pass."""
        from .instruments import aggregate_timings

        return aggregate_timings(self.pass_records)

    def pass_summary(self) -> str:
        """Human-readable table of the per-pass instrumentation records."""
        if not self.pass_records:
            return "(no pass records)"
        lines = [f"{'pass':<26} {'wall (us)':>10} {'nodes':>12} {'params':>12}"]
        for r in self.pass_records:
            lines.append(f"{r.name:<26} {r.seconds * 1e6:10.1f} "
                         f"{r.nodes_before:>5} ->{r.nodes_after:>4} "
                         f"{r.params_before:>5} ->{r.params_after:>4}")
        return "\n".join(lines)

    # ------------------------------------------------------------- deployment
    def executor(self, ctx: Optional["Device"] = None) -> "GraphExecutor":
        """Create a (stateful, legacy-style) graph executor in one step.

        Replaces the two-step ``runtime.create(module, ctx)`` dance (which
        still works).  New code wanting stateless, thread-safe execution
        should construct :class:`repro.runtime.Executor` directly.
        """
        from ..runtime.graph_executor import create

        return create(self, ctx)

    # ------------------------------------------------------------- persistence
    def export(self, path) -> str:
        """Write the module as a versioned, self-contained artifact bundle.

        The bundle (graph JSON + params + target spec + tuned-config
        provenance + schema version) restores through ``repro.load`` with no
        recompilation; see :mod:`repro.runtime.artifact` for the format.
        """
        from ..runtime.artifact import export_module

        return export_module(self, path)

    def save(self, path) -> str:
        """Deprecated alias of :meth:`export` (now writes the versioned
        artifact bundle instead of a pickle)."""
        import warnings

        warnings.warn(
            "CompiledModule.save() is deprecated; use module.export(path) "
            "and repro.load(path)", DeprecationWarning, stacklevel=2)
        return self.export(path)

    @classmethod
    def load(cls, path) -> "CompiledModule":
        """Deprecated: use ``repro.load(path)``.

        Reads the versioned artifact bundle; files written by the legacy
        pickle-based ``save()`` of earlier releases still load here.
        """
        import warnings
        import zipfile

        warnings.warn(
            "CompiledModule.load() is deprecated; use repro.load(path)",
            DeprecationWarning, stacklevel=2)
        if zipfile.is_zipfile(path):
            from ..runtime.artifact import load_module

            return load_module(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or payload.get("format") != _SAVE_FORMAT:
            raise ValueError(f"{path!r} is not a saved CompiledModule")
        module = payload["module"]
        if not isinstance(module, cls):
            raise ValueError(f"{path!r} does not contain a CompiledModule "
                             f"(got {type(module).__name__})")
        return module

    def __repr__(self) -> str:
        return (f"CompiledModule(target={self.target.name}, kernels={len(self.kernels)}, "
                f"est_time={self.total_time * 1e3:.3f} ms)")
