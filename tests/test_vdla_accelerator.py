"""Tests for the VDLA accelerator simulator and its schedules (Section 6.4)."""

import math

import numpy as np
import pytest

from repro import te, tir
from repro.autotvm.space import ConfigSpace
from repro.hardware import pynq_vdla_params, vdla
from repro.hardware.vdla import (
    VDLAAccelerator,
    VDLAInstruction,
    build_instruction_trace,
)
from repro.tir.transforms import inject_virtual_threads
from repro.topi.schedules import vdla as vdla_sched


def _gemm_func(m=64, n=2048, k=128, vthreads=2):
    schedule, tensors = vdla_sched.schedule_gemm_vdla(m, n, k, vthreads=vthreads)
    func = tir.lower(schedule, tensors, name=f"gemm_{m}_{n}_{k}_{vthreads}")
    return inject_virtual_threads(func)


class TestConv2dAsGemm:
    def test_shapes_match_im2col(self):
        m, n, k = vdla_sched.conv2d_as_gemm_workload(1, 64, 56, 56, 64, 3, 1, 1)
        assert m == 64
        assert n == 56 * 56
        assert k == 64 * 9

    def test_stride_reduces_output_pixels(self):
        _m, n, _k = vdla_sched.conv2d_as_gemm_workload(1, 64, 56, 56, 128, 3, 2, 1)
        assert n == 28 * 28


class TestGemmTemplate:
    def test_accumulator_tile_fits_on_chip(self):
        params = pynq_vdla_params()
        cfg = ConfigSpace()
        schedule, _tensors = vdla_sched.gemm_vdla_template(cfg, 64, 3136, 576)
        acc_stage = [s for s in schedule.stages if s.scope == "acc_buffer"]
        assert acc_stage, "accumulator cache stage missing"
        # The macro-tile is bounded by the 128 kB accumulator buffer.
        func = tir.lower(schedule, _tensors, name="check")
        features = tir.extract_features(func)
        assert features.allocation_bytes.get("acc_buffer", 0) <= params.acc_buffer_bytes

    def test_uses_all_three_memory_scopes(self):
        func = _gemm_func()
        features = tir.extract_features(func)
        for scope in ("acc_buffer", "inp_buffer", "wgt_buffer"):
            assert features.allocation_bytes.get(scope, 0) > 0

    def test_tensorized_intrinsic_calls_present(self):
        func = _gemm_func()
        features = tir.extract_features(func)
        assert features.intrinsic_calls > 0
        assert features.intrinsic_flops > 0

    def test_vthread_knob_controls_binding(self):
        # Before the virtual-thread lowering pass the vthread loop is still a
        # loop; the pass then interleaves it into a single instruction stream
        # (Figure 8), which is what the other tests exercise.
        def raw_features(vthreads):
            schedule, tensors = vdla_sched.schedule_gemm_vdla(64, 2048, 128,
                                                              vthreads=vthreads)
            return tir.extract_features(tir.lower(schedule, tensors, name="g"))

        assert raw_features(2).vthread_extent > raw_features(1).vthread_extent


class TestInstructionTrace:
    def test_copy_loops_are_coalesced(self):
        func = _gemm_func()
        trace = build_instruction_trace(func, pynq_vdla_params())
        # Far fewer instructions than data elements: DMA loops collapse into
        # single dma_copy2d-style micro-ops.
        loads = [i for i in trace if i.stage == "ld"]
        assert loads
        # One DMA instruction per staged tile, not one per element: the data
        # matrix alone has >260k elements, yet the load instruction count is
        # orders of magnitude smaller.
        assert len(loads) < 2000
        assert all(i.cycles > 0 for i in trace)

    def test_trace_contains_compute_and_loads(self):
        func = _gemm_func()
        trace = build_instruction_trace(func, pynq_vdla_params())
        stages = {i.stage for i in trace}
        assert "ld" in stages and "ex" in stages

    def test_vthread_instructions_tagged(self):
        func = _gemm_func(vthreads=2)
        trace = build_instruction_trace(func, pynq_vdla_params())
        assert {i.vthread for i in trace} >= {0, 1}


class TestPipelineSimulation:
    def test_latency_hiding_reduces_time(self):
        model = VDLAAccelerator()
        func = _gemm_func(vthreads=2)
        hidden = model.estimate_func(func, latency_hiding=True)
        serial = model.estimate_func(func, latency_hiding=False)
        assert hidden < serial

    def test_latency_hiding_increases_utilisation(self):
        model = VDLAAccelerator()
        func = _gemm_func(vthreads=2)
        util_hidden = model.compute_utilization(func, latency_hiding=True)
        util_serial = model.compute_utilization(func, latency_hiding=False)
        assert 0.0 < util_serial < util_hidden <= 1.0

    def test_utilisation_in_papers_range(self):
        """Figure 10: ~70% without latency hiding, ~88% with, for ResNet layers."""
        model = VDLAAccelerator()
        m, n, k = vdla_sched.conv2d_as_gemm_workload(1, 64, 56, 56, 64, 3, 1, 1)
        schedule, tensors = vdla_sched.schedule_gemm_vdla(m, n, k, vthreads=2)
        func = inject_virtual_threads(tir.lower(schedule, tensors, name="c2"))
        util = model.compute_utilization(func, latency_hiding=True)
        assert util > 0.6

    def test_simulate_trace_overlap_semantics(self):
        model = VDLAAccelerator()
        # Two independent load/execute pairs linked by dependence tokens:
        # with latency hiding the second load overlaps the first execute.
        trace = [
            VDLAInstruction("ld", 10.0, pushes=["ld->ex"]),
            VDLAInstruction("ld", 10.0, pushes=["ld->ex"]),
            VDLAInstruction("ex", 10.0, pops=["ld->ex"]),
            VDLAInstruction("ex", 10.0, pops=["ld->ex"]),
        ]
        overlapped = model.simulate_trace(trace, latency_hiding=True)
        serial = model.simulate_trace(trace, latency_hiding=False)
        assert overlapped.total_cycles < serial.total_cycles
        assert serial.total_cycles == pytest.approx(40.0)

    def test_empty_trace(self):
        result = VDLAAccelerator().simulate_trace([], latency_hiding=True)
        assert result.total_cycles == 0.0
        assert result.instructions == 0

    def test_utilization_bounds(self):
        result = VDLAAccelerator().simulate_trace(
            [VDLAInstruction("ex", 5.0)], latency_hiding=True)
        assert 0.0 <= result.utilization("ex") <= 1.0


class TestRoofline:
    def test_roofline_point_is_finite_and_positive(self):
        model = VDLAAccelerator()
        func = _gemm_func()
        intensity, gops = model.roofline_point(func, latency_hiding=True)
        assert intensity > 0 and math.isfinite(intensity)
        assert 0 < gops <= model.vdla.peak_flops / 1e9

    def test_target_factory(self):
        target = vdla()
        assert target.device_type == "vdla"
        assert target.primitive_support["latency_hiding"] is True
