"""RPC tracker and device pool (paper Section 5.4, Figure 11).

The paper's distributed device pool lets many tuning jobs share boards: a
tracker matches client requests to free devices, the client uploads a
cross-compiled module, runs it remotely and collects timings.  This module
reproduces that architecture in-process: :class:`Tracker` manages a registry
of :class:`RPCServer` instances (each owning one simulated device), hands out
:class:`RPCSession` leases, and enforces exclusive access with locks so
concurrent tuning jobs time-share devices exactly like the real pool.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..hardware.base import HardwareModel
from ..tir.analysis import ProgramFeatures

__all__ = ["RPCServer", "RPCSession", "Tracker", "connect_tracker"]


class RPCServer:
    """One device host registered with the tracker."""

    def __init__(self, key: str, model: HardwareModel, host: str = "127.0.0.1",
                 port: int = 9090):
        self.key = key
        self.model = model
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self.uploaded_modules: Dict[str, object] = {}
        self.request_count = 0

    def acquire(self, timeout: Optional[float] = None) -> bool:
        return self._lock.acquire(timeout=timeout if timeout is not None else -1)

    def release(self) -> None:
        if self._lock.locked():
            self._lock.release()

    # -- remote procedure surface ------------------------------------------------
    def upload(self, name: str, module: object) -> None:
        self.uploaded_modules[name] = module

    def run_timed(self, payload, number: int = 3) -> List[float]:
        """Time a lowered function / feature vector on this device."""
        self.request_count += 1
        result = self.model.measure(payload, number=number)
        if result.error is not None:
            raise RuntimeError(f"remote execution failed: {result.error}")
        return list(result.times)

    def execute(self, fn, *args, **kwargs):
        """Run an arbitrary procedure on this device host, counting it as one
        remote request (the serving engine runs its batches through this)."""
        self.request_count += 1
        return fn(*args, **kwargs)


class RPCSession:
    """A client's lease on one remote device."""

    def __init__(self, server: RPCServer, tracker: "Tracker"):
        self.server = server
        self.tracker = tracker
        self._released = False

    def upload(self, name: str, module: object) -> None:
        self.server.upload(name, module)

    def run_timed(self, payload, number: int = 3) -> List[float]:
        return self.server.run_timed(payload, number=number)

    def execute(self, fn, *args, **kwargs):
        """Run a procedure under this lease (exclusive use of the device)."""
        if self._released:
            raise RuntimeError("RPCSession has been released")
        return self.server.execute(fn, *args, **kwargs)

    def release(self) -> None:
        if not self._released:
            self.server.release()
            self.tracker._notify_free(self.server)
            self._released = True

    def __enter__(self) -> "RPCSession":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Tracker:
    """Matches device requests to free servers (the paper's tracker)."""

    def __init__(self):
        self._servers: Dict[str, List[RPCServer]] = {}
        self._free: Dict[str, "queue.Queue[RPCServer]"] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------------------
    def register(self, server: RPCServer) -> None:
        with self._lock:
            self._servers.setdefault(server.key, []).append(server)
            self._free.setdefault(server.key, queue.Queue()).put(server)

    def register_device(self, key: str, model: HardwareModel, count: int = 1) -> None:
        """Convenience: register ``count`` identical devices under ``key``."""
        for index in range(count):
            self.register(RPCServer(key, model, port=9090 + index))

    # -- allocation -------------------------------------------------------------------
    def request(self, key: str, timeout: float = 10.0) -> RPCSession:
        """Request an exclusive session on a free device of type ``key``."""
        if key not in self._servers:
            raise KeyError(f"No devices registered under key {key!r}; "
                           f"known keys: {sorted(self._servers)}")
        try:
            server = self._free[key].get(timeout=timeout)
        except queue.Empty as exc:
            raise TimeoutError(f"No free device for key {key!r} within {timeout}s") from exc
        server.acquire()
        return RPCSession(server, self)

    def _notify_free(self, server: RPCServer) -> None:
        self._free[server.key].put(server)

    # -- introspection -----------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {key: {"total": len(servers),
                          "free": self._free[key].qsize(),
                          "requests": sum(s.request_count for s in servers)}
                    for key, servers in self._servers.items()}


#: process-wide default tracker (mirrors connecting to a well-known host:port)
_DEFAULT_TRACKER: Optional[Tracker] = None


def connect_tracker(create: bool = True) -> Tracker:
    """Return the process-wide tracker, creating it on first use."""
    global _DEFAULT_TRACKER
    if _DEFAULT_TRACKER is None and create:
        _DEFAULT_TRACKER = Tracker()
    if _DEFAULT_TRACKER is None:
        raise RuntimeError("No tracker available")
    return _DEFAULT_TRACKER
