"""Figure 19: Mali-T860MP4 end-to-end evaluation, float32 and float16.

TVM vs the ARM Compute Library on ResNet-18, MobileNet and DQN.  The paper
reports 1.2x-1.6x speedups; DCGAN and LSTM are not supported by the baseline.
"""

import pytest

from common import build_model, compile_model, emit_summary, print_series
from repro.baselines import ACLSim

MODELS = ["resnet-18", "mobilenet", "dqn"]


def _evaluate():
    rows = []
    acl = ACLSim()
    for model in MODELS:
        for dtype in ("float32", "float16"):
            module = compile_model(model, "mali", opt_level=2, dtype=dtype,
                                   tuned=False)
            module_nofuse = compile_model(model, "mali", opt_level=0, dtype=dtype,
                                          tuned=False)
            graph, _params, shapes = build_model(model, dtype=dtype)
            baseline = acl.run_estimate(graph, shapes, dtype=dtype)
            rows.append((f"{model}/{dtype[-4:]}", {
                "ARMComputeLib": baseline.total_time * 1e3,
                "TVM w/o graph opt": module_nofuse.total_time * 1e3,
                "TVM": module.total_time * 1e3,
            }))
    return rows


def test_fig19_mali_end_to_end(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 19: Mali GPU end-to-end inference time (ms)", rows)
    emit_summary("fig19_mali_e2e", {
        "tvm_ms": {name: round(e["TVM"], 3) for name, e in rows},
        "speedup_vs_acl": {name: round(e["ARMComputeLib"] / e["TVM"], 3)
                           for name, e in rows}})
    for name, entry in rows:
        speedup = entry["ARMComputeLib"] / entry["TVM"]
        benchmark.extra_info[f"{name}_speedup"] = round(speedup, 2)
        assert entry["TVM"] < entry["ARMComputeLib"] * 1.1, \
            f"TVM should be at least competitive with ACL on {name}"
    # float16 must be faster than float32 for the same model under TVM.
    by_name = dict(rows)
    for model in MODELS:
        assert by_name[f"{model}/at16"]["TVM"] <= by_name[f"{model}/at32"]["TVM"] * 1.05
