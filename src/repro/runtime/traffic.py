"""Trace-replay traffic harness (``repro.runtime.traffic``).

The serving benchmarks up to now reported mean throughput under a synthetic
steady load, which says nothing about *goodput* (requests served within
their deadline) under bursts or deadline pressure.  This module makes
traffic a first-class, reproducible artifact:

* :class:`TraceSpec` describes a seeded arrival process — homogeneous
  **Poisson**, **diurnal** (sine-modulated non-homogeneous Poisson), or
  **burst** (periodic spikes on top of a Poisson base) — plus per-request
  deadlines, priorities, and a mixed-model request stream.
* :meth:`TraceSpec.generate` materialises it into a :class:`Trace`: a
  deterministic list of :class:`TraceRequest` (same spec → byte-identical
  trace).  Traces round-trip through JSONL (:meth:`Trace.save` /
  :meth:`Trace.load`) so a benchmark's traffic is a versionable artifact,
  not a side effect of the run.
* :class:`TraceReplayer` drives one or more
  :class:`~repro.runtime.serving.InferenceEngine` instances through a trace
  in (optionally time-scaled) real time, submitting each request at its
  arrival instant with its ``deadline_ms``/``priority``, and records the
  admission outcome of every request — ``served`` / ``shed`` / ``expired``
  / ``cancelled`` / ``failed`` / ``hung`` — together with the engine's
  queue-wait vs batch-execution latency split.  :meth:`TraceReplayer.replay`
  returns a :class:`ReplayReport` with outcome counts, goodput,
  SLO-violation rate, and windowed goodput over trace time.

Determinism: generation draws from one :class:`random.Random` stream seeded
by SHA-256 of the spec identity (stable across platforms and hash
randomisation), exactly one batch of draws per arrival.  Replay outcomes
additionally depend on wall-clock scheduling; with generous deadlines and a
healthy engine every request is served, so outcome *counts* are exactly
reproducible (the chaos tests lean on this to compose a
:class:`~repro.faults.FaultPlan` with a trace).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .serving import (DeadlineExceeded, InferenceEngine, QueueFull,
                      RequestCancelled, ServingError)

__all__ = ["Trace", "TraceError", "TraceReplayer", "TraceRequest",
           "TraceSpec", "ReplayReport", "TRACE_FAMILIES", "load_trace"]

#: JSONL header magic; bump the version on incompatible format changes
TRACE_MAGIC = "RTRC1"

TRACE_FAMILIES = ("poisson", "diurnal", "burst")

#: replay outcome classes, in reporting order
OUTCOMES = ("served", "shed", "expired", "cancelled", "failed", "hung")


class TraceError(ValueError):
    """A trace spec, trace file, or replay configuration is malformed."""


# ---------------------------------------------------------------------------
# Trace generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceRequest:
    """One request of a trace: *when* it arrives and what it demands."""

    index: int                          #: position in the trace (0-based)
    arrival_s: float                    #: arrival time from trace start
    model: str = "default"              #: stream name for mixed-model traces
    deadline_ms: Optional[float] = None  #: end-to-end SLO, or None
    priority: int = 0                   #: admission priority (higher first)

    def to_json(self) -> str:
        record = {"index": self.index, "arrival_s": self.arrival_s,
                  "model": self.model, "deadline_ms": self.deadline_ms,
                  "priority": self.priority}
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceRequest":
        record = json.loads(line)
        return cls(index=int(record["index"]),
                   arrival_s=float(record["arrival_s"]),
                   model=record.get("model", "default"),
                   deadline_ms=record.get("deadline_ms"),
                   priority=int(record.get("priority", 0)))


@dataclass
class TraceSpec:
    """Seeded description of an arrival process; :meth:`generate` a trace.

    Parameters
    ----------
    family:
        ``"poisson"`` — homogeneous arrivals at ``rate_rps``;
        ``"diurnal"`` — non-homogeneous Poisson whose instantaneous rate is
        ``rate_rps * (1 + diurnal_amplitude * sin(2*pi*t / period))``;
        ``"burst"`` — Poisson base at ``rate_rps`` multiplied by
        ``burst_factor`` during periodic windows (``burst_duration_s`` every
        ``burst_every_s``).
    rate_rps / duration_s:
        Base offered load and trace horizon (trace time).
    seed:
        Every draw comes from one RNG derived from this seed and the spec's
        identity; the same spec always generates a byte-identical trace.
    deadline_ms / deadline_jitter:
        Per-request SLO: each request gets ``deadline_ms`` scaled by a
        uniform factor in ``[1 - jitter, 1 + jitter]``.  ``None`` disables
        deadlines.
    priorities:
        Pool of admission priorities sampled uniformly per request.
    models:
        Mixed-model stream weights (``{"resnet-18": 3, "mobilenet": 1}``);
        each request is tagged with one sampled model name.
    max_requests:
        Hard cap on generated requests (guards against accidental huge
        rate × duration products).
    """

    family: str
    rate_rps: float
    duration_s: float
    seed: int = 0
    deadline_ms: Optional[float] = None
    deadline_jitter: float = 0.0
    priorities: Sequence[int] = (0,)
    models: Mapping[str, float] = field(default_factory=lambda: {"default": 1.0})
    diurnal_period_s: Optional[float] = None
    diurnal_amplitude: float = 0.8
    burst_every_s: float = 2.0
    burst_duration_s: float = 0.5
    burst_factor: float = 4.0
    max_requests: int = 100_000

    def __post_init__(self):
        if self.family not in TRACE_FAMILIES:
            raise TraceError(f"Unknown trace family {self.family!r}; "
                             f"known: {list(TRACE_FAMILIES)}")
        if self.rate_rps <= 0:
            raise TraceError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.duration_s <= 0:
            raise TraceError(f"duration_s must be > 0, got {self.duration_s}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise TraceError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if not 0.0 <= self.deadline_jitter < 1.0:
            raise TraceError(f"deadline_jitter must be in [0, 1), "
                             f"got {self.deadline_jitter}")
        if not self.priorities:
            raise TraceError("priorities must not be empty")
        if not self.models or any(w <= 0 for w in self.models.values()):
            raise TraceError("models must map stream names to positive "
                             f"weights, got {dict(self.models)!r}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise TraceError(f"diurnal_amplitude must be in [0, 1), "
                             f"got {self.diurnal_amplitude}")
        if self.burst_factor < 1.0:
            raise TraceError(f"burst_factor must be >= 1, "
                             f"got {self.burst_factor}")
        if self.burst_duration_s <= 0 or self.burst_every_s <= 0 \
                or self.burst_duration_s > self.burst_every_s:
            raise TraceError(
                f"burst windows need 0 < burst_duration_s <= burst_every_s, "
                f"got {self.burst_duration_s} / {self.burst_every_s}")
        if self.max_requests < 1:
            raise TraceError(f"max_requests must be >= 1, "
                             f"got {self.max_requests}")

    # ----------------------------------------------------------------- rates
    def rate_at(self, t: float) -> float:
        """Instantaneous offered rate (requests/s) at trace time ``t``."""
        if self.family == "poisson":
            return self.rate_rps
        if self.family == "diurnal":
            period = self.diurnal_period_s or self.duration_s
            return self.rate_rps * (
                1.0 + self.diurnal_amplitude
                * math.sin(2.0 * math.pi * t / period))
        # burst
        in_burst = (t % self.burst_every_s) < self.burst_duration_s
        return self.rate_rps * (self.burst_factor if in_burst else 1.0)

    def peak_rate(self) -> float:
        if self.family == "diurnal":
            return self.rate_rps * (1.0 + self.diurnal_amplitude)
        if self.family == "burst":
            return self.rate_rps * self.burst_factor
        return self.rate_rps

    def _rng(self) -> random.Random:
        # Stable across processes and hash randomisation (same idiom as
        # repro.faults).
        identity = (f"{self.seed}:{self.family}:{self.rate_rps}:"
                    f"{self.duration_s}")
        digest = hashlib.sha256(identity.encode())
        return random.Random(int.from_bytes(digest.digest()[:8], "little"))

    # ------------------------------------------------------------- generation
    def generate(self) -> "Trace":
        """Materialise the spec into a deterministic :class:`Trace`.

        Arrivals come from Lewis–Shedler thinning against the family's peak
        rate (which for a homogeneous Poisson degenerates to plain
        exponential inter-arrivals); every candidate consumes a fixed number
        of RNG draws so the stream stays aligned regardless of accept/reject.
        """
        rng = self._rng()
        peak = self.peak_rate()
        names = sorted(self.models)
        weights = [float(self.models[name]) for name in names]
        total_weight = sum(weights)

        requests: List[TraceRequest] = []
        t = 0.0
        while len(requests) < self.max_requests:
            t += rng.expovariate(peak)
            if t >= self.duration_s:
                break
            if rng.random() * peak > self.rate_at(t):
                continue
            pick = rng.random() * total_weight
            model = names[-1]
            for name, weight in zip(names, weights):
                if pick < weight:
                    model = name
                    break
                pick -= weight
            deadline = None
            if self.deadline_ms is not None:
                jitter = 1.0 + self.deadline_jitter * (2.0 * rng.random() - 1.0)
                deadline = self.deadline_ms * jitter
            priority = self.priorities[rng.randrange(len(self.priorities))]
            requests.append(TraceRequest(index=len(requests), arrival_s=t,
                                         model=model, deadline_ms=deadline,
                                         priority=priority))
        return Trace(self, requests)

    def to_dict(self) -> Dict[str, object]:
        spec = dataclasses.asdict(self)
        spec["priorities"] = list(self.priorities)
        spec["models"] = dict(self.models)
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "TraceSpec":
        data = dict(spec)
        if "priorities" in data:
            data["priorities"] = tuple(data["priorities"])
        return cls(**data)


class Trace:
    """A generated (or loaded) request trace: spec + arrival list.

    The JSONL representation is fully deterministic — one sorted-key header
    line carrying the spec, then one sorted-key line per request — so
    ``spec.generate().save(path)`` writes byte-identical files across runs,
    platforms, and processes.
    """

    def __init__(self, spec: TraceSpec, requests: Sequence[TraceRequest]):
        self.spec = spec
        self.requests = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[TraceRequest]:
        return iter(self.requests)

    @property
    def duration_s(self) -> float:
        return self.spec.duration_s

    def offered_rps(self) -> float:
        """Measured offered load: generated arrivals over the horizon."""
        return len(self.requests) / self.spec.duration_s

    def model_names(self) -> List[str]:
        return sorted({request.model for request in self.requests})

    # ----------------------------------------------------------------- JSONL
    def to_jsonl(self) -> str:
        header = json.dumps({"magic": TRACE_MAGIC,
                             "spec": self.spec.to_dict()}, sort_keys=True)
        lines = [header] + [request.to_json() for request in self.requests]
        return "\n".join(lines) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        if not lines:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: not a trace file ({exc})") from None
        if not isinstance(header, dict) or header.get("magic") != TRACE_MAGIC:
            raise TraceError(
                f"{path}: bad trace header (expected magic {TRACE_MAGIC!r}); "
                f"is this a trace JSONL written by Trace.save()?")
        spec = TraceSpec.from_dict(header["spec"])
        requests = [TraceRequest.from_json(line) for line in lines[1:]]
        return cls(spec, requests)


def load_trace(path) -> Trace:
    """Load a JSONL trace written by :meth:`Trace.save`."""
    return Trace.load(path)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

class ReplayReport:
    """Outcome of one :meth:`TraceReplayer.replay` run.

    ``records`` holds one dict per trace request (in trace order) with its
    ``outcome`` (one of :data:`OUTCOMES`), whether its deadline was met, and
    the engine's latency split (queue wait vs batch execution) for served
    requests.  Aggregates: :meth:`counts`, :attr:`goodput_rps`,
    :attr:`violation_rate`, and :meth:`windowed_goodput`.
    """

    def __init__(self, trace: Trace, records: List[Dict[str, object]],
                 time_scale: float,
                 outputs: Optional[Dict[int, List[np.ndarray]]] = None):
        self.trace = trace
        self.records = records
        self.time_scale = time_scale
        self.outputs = outputs

    def counts(self) -> Dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record["outcome"]] += 1
        return counts

    @property
    def served_ok(self) -> int:
        """Requests served within their deadline (goodput numerator)."""
        return sum(1 for r in self.records
                   if r["outcome"] == "served" and r["deadline_met"])

    @property
    def served_late(self) -> int:
        return sum(1 for r in self.records
                   if r["outcome"] == "served" and not r["deadline_met"])

    @property
    def goodput_rps(self) -> float:
        """Deadline-met completions per second of (scaled) replay horizon."""
        horizon = self.trace.duration_s * self.time_scale
        return self.served_ok / horizon if horizon > 0 else 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of non-cancelled requests that missed their SLO
        (shed, expired, failed, hung, or served late)."""
        considered = [r for r in self.records if r["outcome"] != "cancelled"]
        if not considered:
            return 0.0
        violated = sum(1 for r in considered
                       if not (r["outcome"] == "served" and r["deadline_met"]))
        return violated / len(considered)

    def windowed_goodput(self, window_s: float = 1.0) -> List[Dict[str, float]]:
        """Goodput per arrival window of trace time (the goodput *curve*)."""
        if window_s <= 0:
            raise TraceError(f"window_s must be > 0, got {window_s}")
        n_windows = max(1, math.ceil(self.trace.duration_s / window_s))
        offered = [0] * n_windows
        ok = [0] * n_windows
        for record in self.records:
            window = min(int(record["arrival_s"] / window_s), n_windows - 1)
            offered[window] += 1
            if record["outcome"] == "served" and record["deadline_met"]:
                ok[window] += 1
        scaled = window_s * self.time_scale
        return [{"window_start_s": index * window_s,
                 "offered": offered[index],
                 "served_ok": ok[index],
                 "goodput_rps": ok[index] / scaled}
                for index in range(n_windows)]

    def latency_split_ms(self) -> Dict[str, float]:
        """Mean queue-wait and batch-execution milliseconds of served
        requests (the honest wall-latency breakdown)."""
        waits = [r["queue_wait_ms"] for r in self.records
                 if r["outcome"] == "served" and r["queue_wait_ms"] is not None]
        execs = [r["execute_ms"] for r in self.records
                 if r["outcome"] == "served" and r["execute_ms"] is not None]
        return {
            "queue_wait_mean_ms": float(np.mean(waits)) if waits else 0.0,
            "queue_wait_p99_ms": float(np.percentile(waits, 99)) if waits else 0.0,
            "execute_mean_ms": float(np.mean(execs)) if execs else 0.0,
            "execute_p99_ms": float(np.percentile(execs, 99)) if execs else 0.0,
        }

    def summary(self) -> Dict[str, object]:
        counts = self.counts()
        return {
            "requests": len(self.records),
            "offered_rps": self.trace.offered_rps(),
            "outcomes": counts,
            "served_ok": self.served_ok,
            "served_late": self.served_late,
            "goodput_rps": self.goodput_rps,
            "violation_rate": self.violation_rate,
            "latency_split_ms": self.latency_split_ms(),
        }


class TraceReplayer:
    """Replays a :class:`Trace` against live inference engine(s).

    Parameters
    ----------
    engines:
        One :class:`InferenceEngine` (serves every model stream), or a
        mapping ``{model name: engine}`` for mixed-model traces.
    trace:
        The trace to replay.
    inputs_for:
        ``callable(TraceRequest) -> inputs dict``.  Defaults to a
        deterministic per-model pool of ``input_pool`` random inputs derived
        from the trace seed, cycled by request index — so two replays of the
        same trace submit byte-identical payloads.
    time_scale:
        Multiplier on trace time (0.5 replays twice as fast).  Deadlines are
        scaled by the same factor when ``scale_deadlines`` (default) so the
        load/SLO ratio is preserved.
    giveup_ms:
        Client patience: when set, the collector cancels any request still
        unresolved this long (scaled) after submission — the ``cancelled``
        outcome path.  ``None`` (default) never cancels.
    result_timeout_s:
        Hard per-future bound; a future still pending after this is counted
        ``hung`` (a healthy engine must never produce one).
    store_outputs:
        Keep served outputs in :attr:`ReplayReport.outputs` (keyed by
        request index) for bit-identity checks.
    """

    def __init__(self, engines: Union[InferenceEngine,
                                      Mapping[str, InferenceEngine]],
                 trace: Trace, *,
                 inputs_for: Optional[Callable[[TraceRequest], Dict]] = None,
                 time_scale: float = 1.0, scale_deadlines: bool = True,
                 giveup_ms: Optional[float] = None,
                 result_timeout_s: float = 120.0,
                 store_outputs: bool = False, input_pool: int = 8):
        if time_scale <= 0:
            raise TraceError(f"time_scale must be > 0, got {time_scale}")
        if giveup_ms is not None and giveup_ms <= 0:
            raise TraceError(f"giveup_ms must be > 0, got {giveup_ms}")
        if input_pool < 1:
            raise TraceError(f"input_pool must be >= 1, got {input_pool}")
        self.trace = trace
        self.time_scale = time_scale
        self.scale_deadlines = scale_deadlines
        self.giveup_ms = giveup_ms
        self.result_timeout_s = result_timeout_s
        self.store_outputs = store_outputs
        self._input_pool = input_pool
        self._inputs_for = inputs_for
        if isinstance(engines, InferenceEngine):
            self._engines: Dict[str, InferenceEngine] = {}
            self._default_engine: Optional[InferenceEngine] = engines
        else:
            self._engines = dict(engines)
            self._default_engine = None
            missing = [name for name in trace.model_names()
                       if name not in self._engines]
            if missing:
                raise TraceError(
                    f"trace names model streams {missing} but engines were "
                    f"given only for {sorted(self._engines)}")
        self._pools: Dict[str, List[Dict[str, np.ndarray]]] = {}

    # ------------------------------------------------------------------ setup
    def engine_for(self, model: str) -> InferenceEngine:
        if self._default_engine is not None:
            return self._default_engine
        return self._engines[model]

    def _inputs(self, request: TraceRequest) -> Dict[str, np.ndarray]:
        if self._inputs_for is not None:
            return self._inputs_for(request)
        pool = self._pools.get(request.model)
        if pool is None:
            engine = self.engine_for(request.model)
            specs = engine._reference.input_specs
            pool = []
            for slot in range(self._input_pool):
                digest = hashlib.sha256(
                    f"{self.trace.spec.seed}:{request.model}:{slot}".encode())
                rng = np.random.default_rng(
                    int.from_bytes(digest.digest()[:8], "little"))
                pool.append({spec.name: rng.random(spec.shape)
                             .astype(spec.dtype or "float32")
                             for spec in specs})
            self._pools[request.model] = pool
        return pool[request.index % len(pool)]

    # ------------------------------------------------------------------ replay
    def replay(self) -> ReplayReport:
        """Submit every request at its (scaled) arrival instant, then
        collect and classify every outcome."""
        scale = self.time_scale
        pending: List[Tuple[TraceRequest, object, float]] = []
        records: Dict[int, Dict[str, object]] = {}
        outputs: Optional[Dict[int, List[np.ndarray]]] = (
            {} if self.store_outputs else None)

        start = time.monotonic()
        for request in self.trace:
            target = start + request.arrival_s * scale
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            engine = self.engine_for(request.model)
            deadline_ms = request.deadline_ms
            if deadline_ms is not None and self.scale_deadlines:
                deadline_ms = deadline_ms * scale
            try:
                future = engine.submit(self._inputs(request),
                                       deadline_ms=deadline_ms,
                                       priority=request.priority)
            except QueueFull:
                records[request.index] = self._record(request, "shed")
                continue
            except ServingError as exc:
                records[request.index] = self._record(request, "failed",
                                                      error=repr(exc))
                continue
            pending.append((request, future, time.monotonic()))

        giveup_s = None if self.giveup_ms is None \
            else self.giveup_ms * scale / 1000.0
        hard_deadline = time.monotonic() + self.result_timeout_s
        for request, future, submitted_at in pending:
            if giveup_s is not None and not future.done():
                patience = (submitted_at + giveup_s) - time.monotonic()
                try:
                    future.result(max(patience, 0.0))
                except TimeoutError:
                    future.cancel()
                except Exception:
                    pass        # classified below from the resolved future
            try:
                result = future.result(max(hard_deadline - time.monotonic(),
                                           0.0))
            except TimeoutError:
                records[request.index] = self._record(request, "hung")
                continue
            except DeadlineExceeded:
                records[request.index] = self._record(request, "expired",
                                                      future=future)
                continue
            except QueueFull:
                records[request.index] = self._record(request, "shed",
                                                      future=future)
                continue
            except RequestCancelled:
                records[request.index] = self._record(request, "cancelled",
                                                      future=future)
                continue
            except Exception as exc:  # noqa: BLE001 — typed in the record
                records[request.index] = self._record(request, "failed",
                                                      future=future,
                                                      error=repr(exc))
                continue
            record = self._record(request, "served", future=future)
            deadline_s = None
            if request.deadline_ms is not None:
                scaled_ms = request.deadline_ms * scale \
                    if self.scale_deadlines else request.deadline_ms
                deadline_s = scaled_ms / 1000.0
            record["deadline_met"] = (deadline_s is None
                                      or (future.wall_latency is not None
                                          and future.wall_latency <= deadline_s))
            records[request.index] = record
            if outputs is not None:
                outputs[request.index] = result

        ordered = [records[request.index] for request in self.trace]
        return ReplayReport(self.trace, ordered, scale, outputs)

    @staticmethod
    def _record(request: TraceRequest, outcome: str, future=None,
                error: Optional[str] = None) -> Dict[str, object]:
        def ms(seconds: Optional[float]) -> Optional[float]:
            return None if seconds is None else seconds * 1e3

        record = {
            "index": request.index,
            "model": request.model,
            "arrival_s": request.arrival_s,
            "priority": request.priority,
            "deadline_ms": request.deadline_ms,
            "outcome": outcome,
            "deadline_met": False,
            "wall_ms": None,
            "queue_wait_ms": None,
            "execute_ms": None,
            "sim_ms": None,
            "batch_size": None,
        }
        if error is not None:
            record["error"] = error
        if future is not None:
            record["wall_ms"] = ms(future.wall_latency)
            record["queue_wait_ms"] = ms(future.queue_wait)
            record["execute_ms"] = ms(future.execute_latency)
            record["sim_ms"] = ms(future.simulated_latency)
            record["batch_size"] = future.batch_size
        return record
