"""Composable pass infrastructure for the graph-level compiler.

The paper presents compilation as a pipeline of graph rewriting passes
(Section 3) feeding operator-level code generation.  This module provides the
machinery that makes that pipeline explicit and recomposable:

* :class:`Pass` — a named, opt-level-gated rewrite over a
  :class:`CompileState`, declaring which analyses it requires and which it
  invalidates.
* a process-wide registry (:func:`register_pass`, :func:`get_pass`,
  :func:`list_passes`) so pipelines and ablations refer to passes by name.
* :class:`Sequential` — the pass manager: runs passes in order under a
  :class:`~repro.compiler.pass_context.PassContext`, automatically re-runs
  shape inference between passes that invalidate it (replacing the four
  manual ``infer_shapes`` calls of the legacy ``graph.build``), and drives
  the context's instruments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Set, Tuple, Union)

import numpy as np

from .pass_context import PassContext

if TYPE_CHECKING:
    from ..graph.ir import Graph
    from ..graph.passes import FusedGroup, MemoryPlan
    from ..hardware.target import Target

__all__ = ["CompileState", "Pass", "PassInfo", "Sequential", "register_pass",
           "get_pass", "list_passes", "DEFAULT_PIPELINE", "default_pipeline"]

#: the analysis name tracked by the automatic re-inference machinery
SHAPE_ANALYSIS = "shapes"


@dataclass
class CompileState:
    """Mutable state threaded through the pass pipeline.

    Passes rewrite ``graph``/``params`` in place or replace them; fusion and
    memory planning deposit their results in ``groups``/``memory_plan`` for
    the code generator; ``stats`` accumulates per-pass counters surfaced on
    the final module; ``analyses`` is the set of currently-valid analyses
    (shape inference is re-run automatically when a pass invalidated it).
    """

    graph: "Graph"
    params: Dict[str, np.ndarray]
    target: "Target"
    input_shapes: Dict[str, Tuple[int, ...]]
    groups: Optional[List["FusedGroup"]] = None
    memory_plan: Optional["MemoryPlan"] = None
    stats: Dict[str, float] = field(default_factory=dict)
    analyses: Set[str] = field(default_factory=set)

    def invalidate(self, analysis: str) -> None:
        self.analyses.discard(analysis)

    def ensure_shapes(self) -> None:
        """(Re-)run shape inference if a pass invalidated it."""
        if SHAPE_ANALYSIS not in self.analyses:
            self.graph.infer_shapes(self.input_shapes)
            self.analyses.add(SHAPE_ANALYSIS)


@dataclass(frozen=True)
class PassInfo:
    """Static metadata of a pass."""

    name: str
    opt_level: int = 0
    required: Tuple[str, ...] = (SHAPE_ANALYSIS,)
    invalidates: Tuple[str, ...] = ()


class Pass:
    """A named graph-level rewrite: ``fn(state, ctx) -> None``.

    ``opt_level`` gates execution (the pass only runs when the active
    :class:`PassContext` has at least that level); ``required`` lists the
    analyses that must be valid before the pass runs (the pass manager
    recomputes them if needed) and ``invalidates`` the ones its rewrite
    destroys.
    """

    def __init__(self, fn: Callable[[CompileState, PassContext], None],
                 info: PassInfo):
        self._fn = fn
        self.info = info

    @property
    def name(self) -> str:
        return self.info.name

    def __call__(self, state: CompileState,
                 ctx: Optional[PassContext] = None) -> CompileState:
        ctx = ctx or PassContext.current()
        self._fn(state, ctx)
        for analysis in self.info.invalidates:
            state.invalidate(analysis)
        return state

    def __repr__(self) -> str:
        return f"Pass({self.info.name}, opt_level={self.info.opt_level})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

PASS_REGISTRY: Dict[str, Pass] = {}

#: pass names executed, in order, by the default ``repro.compile`` pipeline
DEFAULT_PIPELINE: Tuple[str, ...] = (
    "fold_constants",
    "simplify_inference",
    "alter_layout",
    "fuse_ops",
    "plan_memory",
)


def register_pass(name: str, opt_level: int = 0,
                  required: Sequence[str] = (SHAPE_ANALYSIS,),
                  invalidates: Sequence[str] = ()) -> Callable:
    """Decorator registering ``fn(state, ctx)`` as a named pass."""

    def decorator(fn: Callable[[CompileState, PassContext], None]) -> Pass:
        info = PassInfo(name=name, opt_level=opt_level,
                        required=tuple(required), invalidates=tuple(invalidates))
        pass_ = Pass(fn, info)
        PASS_REGISTRY[name] = pass_
        return pass_

    return decorator


def get_pass(name: str) -> Pass:
    """Look up a registered pass by name."""
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"Unknown pass {name!r}; registered passes: "
                       f"{sorted(PASS_REGISTRY)}") from None


def list_passes() -> List[str]:
    """Names of all registered passes."""
    return sorted(PASS_REGISTRY)


def default_pipeline() -> List[Pass]:
    """The standard graph-optimization pipeline, as :class:`Pass` objects."""
    return [get_pass(name) for name in DEFAULT_PIPELINE]


def _as_pass(entry: Union[str, Pass, Callable]) -> Pass:
    if isinstance(entry, Pass):
        return entry
    if isinstance(entry, str):
        return get_pass(entry)
    if callable(entry):  # bare function: wrap as an always-on anonymous pass
        name = getattr(entry, "__name__", "anonymous")
        return Pass(entry, PassInfo(name=name))
    raise TypeError(f"Cannot interpret {entry!r} as a pass")


# ---------------------------------------------------------------------------
# The pass manager
# ---------------------------------------------------------------------------

def _run_hook(instrument, hook: str, pass_name: str, fn, *args) -> None:
    """Run one instrument hook, distinguishing *reports* from *crashes*.

    A :class:`~repro.analysis.errors.VerifierError` is the instrument doing
    its job (the IR is broken — the error already names the pass) and
    propagates untouched.  Anything else is the instrument itself failing,
    which would otherwise masquerade as a compiler bug of the surrounding
    pass — it is wrapped in :class:`InstrumentError` naming the instrument,
    the hook and the pass, with the original as ``__cause__``.
    """
    from ..analysis.errors import VerifierError
    from .instruments import InstrumentError

    try:
        fn(*args)
    except VerifierError:
        raise
    except Exception as exc:
        name = getattr(instrument, "name", type(instrument).__name__)
        raise InstrumentError(name, pass_name, hook, exc) from exc


class Sequential:
    """Runs a list of passes in order under a :class:`PassContext`.

    Passes disabled by the context (opt-level gate or ``disabled_passes``)
    are skipped; the context's ``extra_passes`` are appended after the
    configured list.  Between passes the manager re-establishes required
    analyses — in practice, shape inference after any rewriting pass — and
    notifies every instrument around each executed pass.
    """

    #: passes that feed code generation directly; extra graph-rewrite passes
    #: must run before these or their rewrites never reach the kernels
    CODEGEN_PASSES = ("fuse_ops", "plan_memory")

    def __init__(self, passes: Optional[Sequence[Union[str, Pass, Callable]]] = None):
        entries = DEFAULT_PIPELINE if passes is None else passes
        self.passes: List[Pass] = [_as_pass(entry) for entry in entries]

    def _with_extras(self, extras: List[Pass]) -> List[Pass]:
        """Splice context extra passes in before fusion/memory planning."""
        if not extras:
            return list(self.passes)
        cut = len(self.passes)
        for index, pass_ in enumerate(self.passes):
            if pass_.info.name in self.CODEGEN_PASSES:
                cut = index
                break
        return self.passes[:cut] + extras + self.passes[cut:]

    def __call__(self, state: CompileState,
                 ctx: Optional[PassContext] = None,
                 instruments: Optional[Sequence] = None) -> CompileState:
        ctx = ctx or PassContext.current()
        instruments = list(ctx.instruments if instruments is None else instruments)
        pipeline = self._with_extras([_as_pass(extra) for extra in ctx.extra_passes])
        # A typo'd name in disabled_passes would otherwise silently run the
        # pass it meant to ablate — fail loudly instead.
        known = set(PASS_REGISTRY) | {p.info.name for p in pipeline}
        unknown = ctx.disabled_passes - known
        if unknown:
            raise KeyError(f"disabled_passes {sorted(unknown)} match no "
                           f"registered or pipeline pass; known passes: "
                           f"{sorted(known)}")
        executed: List[str] = []
        for pass_ in pipeline:
            if not ctx.pass_enabled(pass_):
                continue
            if SHAPE_ANALYSIS in pass_.info.required:
                state.ensure_shapes()
            for instrument in instruments:
                _run_hook(instrument, "run_before_pass", pass_.info.name,
                          instrument.run_before_pass, pass_.info, state)
            started = time.perf_counter()
            state = pass_(state, ctx)
            elapsed = time.perf_counter() - started
            for instrument in instruments:
                _run_hook(instrument, "run_after_pass", pass_.info.name,
                          instrument.run_after_pass, pass_.info, state,
                          elapsed)
            executed.append(pass_.info.name)
        state.stats["passes_executed"] = executed  # type: ignore[assignment]
        state.ensure_shapes()
        return state

    def __repr__(self) -> str:
        return f"Sequential([{', '.join(p.info.name for p in self.passes)}])"
