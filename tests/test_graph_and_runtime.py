"""Tests for the graph IR, high-level passes, end-to-end build and runtime."""

import numpy as np
import pytest

from repro import runtime
from repro.baselines import TFLiteSim, TensorFlowSim, VendorLibrary, CUDNN_PROFILE
from repro.frontend import ModelBuilder, dqn, get_model, lstm_language_model, mobilenet, resnet18
from repro.graph import (
    OP_REGISTRY,
    OpPattern,
    build,
    extract_tasks,
    fold_constants,
    fuse_ops,
    plan_memory,
)
from repro.graph.ops import register_op
from repro.hardware import arm_cpu, cuda, vdla
from repro.topi import reference as ref


def _small_cnn():
    b = ModelBuilder("small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


def test_graph_topological_order_and_shapes():
    graph, _params, shapes = _small_cnn()
    graph.infer_shapes(shapes)
    order = {id(n): i for i, n in enumerate(graph.nodes)}
    for node in graph.nodes:
        for parent in node.inputs:
            assert order[id(parent)] < order[id(node)]
    assert graph.outputs[0].shape == (1, 10)


def test_fusion_rules():
    graph, _params, shapes = _small_cnn()
    graph.infer_shapes(shapes)
    groups = fuse_ops(graph, enabled=True)
    # conv2d absorbs the following bn + relu chain.
    conv_group = next(g for g in groups if g.master.op == "conv2d")
    ops_in_group = {n.op for n in conv_group.nodes}
    assert {"batch_norm", "relu"} <= ops_in_group
    # softmax is opaque and must stay alone.
    softmax_group = next(g for g in groups if any(n.op == "softmax" for n in g.nodes))
    assert len(softmax_group.nodes) == 1
    # Disabling fusion yields one group per operator.
    assert len(fuse_ops(graph, enabled=False)) == len(graph.op_nodes)


def test_constant_folding_precomputes_param_only_subgraphs():
    b = ModelBuilder("fold", seed=0)
    data = b.input("data", (1, 4))
    w1 = b._param("w1", (4, 4))
    w2 = b._param("w2", (4, 4))
    combined = b.add(w1, w2)              # depends only on parameters
    out = b.dense(data, 4, "fc")
    out = b.add(out, combined)
    graph, params = b.finalize(out)
    graph.infer_shapes({"data": (1, 4)})
    folded, new_params = fold_constants(graph, params)
    assert getattr(folded, "fold_count", 0) >= 1
    folded_names = [name for name in new_params if name.endswith("_folded")]
    assert folded_names
    np.testing.assert_allclose(new_params[folded_names[0]],
                               params["w1"] + params["w2"])


def test_memory_planner_reuses_storage():
    graph, _params, shapes = resnet18(batch=1, image_size=64, num_classes=10)
    graph.infer_shapes(shapes)
    plan = plan_memory(graph)
    assert plan.planned_bytes < plan.naive_bytes
    assert plan.reuse_ratio > 1.5


def test_build_and_execute_matches_numpy_reference():
    graph, params, shapes = _small_cnn()
    target = cuda()
    _g, module, params = build(graph, target, params, opt_level=2)
    executor = runtime.create(module)
    executor.set_input(**params)
    data = np.random.rand(1, 3, 16, 16).astype("float32")
    executor.run(data=data)
    out = executor.get_output(0).asnumpy()

    # Independent NumPy composition of the same network.
    conv = ref.conv2d_nchw(data, params["conv0_weight"], 1, 1)
    bn = ref.batch_norm_inference(conv, params["bn0_gamma"], params["bn0_beta"],
                                  params["bn0_mean"], params["bn0_var"])
    act = ref.relu(bn)
    pooled = ref.max_pool2d(act, 2, 2)
    flat = ref.flatten(pooled)
    logits = ref.dense(flat, params["fc_weight"])
    expected = ref.softmax(logits)
    np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)
    assert executor.last_run_time > 0
    assert abs(sum(t for _n, t in executor.profile()) - executor.last_run_time) < 1e-9


def test_opt_levels_monotonically_improve_latency():
    graph, params, shapes = dqn(batch=1)
    target = cuda()
    times = {}
    for level in (0, 2):
        g, p, s = dqn(batch=1)
        _g, module, _p = build(g, target, p, opt_level=level)
        times[level] = module.total_time
    assert times[2] <= times[0]


def test_heterogeneous_build_assigns_devices():
    graph, params, shapes = resnet18(batch=1, image_size=32, num_classes=10)
    _g, module, _p = build(graph, arm_cpu(), params, opt_level=2,
                           heterogeneous_targets={"conv2d": vdla()})
    devices = {k.device for k in module.kernels if k.group.master.op == "conv2d"}
    assert devices == {"vdla"}


def test_extract_tasks_unique_workloads():
    graph, _params, shapes = mobilenet(batch=1)
    tasks = extract_tasks(graph, cuda(), shapes)
    assert len(tasks) >= 10
    assert len({t.name for t in tasks}) == len(tasks)


def test_model_zoo_shapes():
    specs = {
        "resnet-18": ((1, 3, 224, 224), (1, 1000)),
        "mobilenet": ((1, 3, 224, 224), (1, 1000)),
        "dqn": ((1, 4, 84, 84), (1, 18)),
    }
    for name, (in_shape, out_shape) in specs.items():
        graph, params, shapes = get_model(name)
        graph.infer_shapes(shapes)
        assert graph.outputs[0].shape == out_shape
    lstm_graph, _p, lstm_shapes = lstm_language_model(batch=1, seq_len=2)
    lstm_graph.infer_shapes(lstm_shapes)
    assert lstm_graph.outputs[0].shape == (1, 10000)
    with pytest.raises(KeyError):
        get_model("alexnet")


def test_vendor_library_efficiency_ordering():
    target = cuda()
    lib = VendorLibrary(CUDNN_PROFILE, target)
    conventional = lib.conv2d_time(1, 128, 28, 28, 256, 3, 1, 1)
    unusual = lib.conv2d_time(1, 128, 28, 28, 256, 4, 2, 0)
    # Per FLOP, the library is far less efficient on the unusual kernel.
    conventional_flops = 2 * 28 * 28 * 256 * 128 * 9
    unusual_flops = 2 * 13 * 13 * 256 * 128 * 16
    assert unusual / unusual_flops > conventional / conventional_flops


def test_framework_baselines_and_unsupported_ops():
    graph, _p, shapes = dqn(batch=1)
    tf = TensorFlowSim()
    result = tf.run_estimate(graph, shapes)
    assert result.total_time > result.kernel_time > 0
    assert result.num_kernels == len(graph.op_nodes)
    tflite = TFLiteSim()
    dcgan_graph, _p2, dcgan_shapes = get_model("dcgan")
    with pytest.raises(NotImplementedError):
        tflite.run_estimate(dcgan_graph, dcgan_shapes)


def test_rpc_tracker_pool():
    from repro.runtime import Tracker, RPCServer

    tracker = Tracker()
    tracker.register_device("titan-x", cuda().model, count=2)
    session = tracker.request("titan-x")
    features = None
    graph_ok = True
    times = session.run_timed(__import__("repro.tir", fromlist=["ProgramFeatures"]).ProgramFeatures(), number=2)
    assert len(times) == 2
    session.release()
    summary = tracker.summary()
    assert summary["titan-x"]["total"] == 2
    assert summary["titan-x"]["free"] == 2
    with pytest.raises(KeyError):
        tracker.request("nonexistent")


def test_ndarray_roundtrip():
    data = np.random.rand(2, 3).astype("float32")
    array = runtime.array(data, runtime.gpu(0))
    assert array.shape == (2, 3)
    out = runtime.empty((2, 3))
    array.copyto(out)
    np.testing.assert_allclose(out.asnumpy(), data)
    with pytest.raises(ValueError):
        out.copyfrom(np.zeros((4, 4)))


def test_register_custom_operator():
    register_op("negate_test", OpPattern.INJECTIVE,
                lambda ins, attrs: tuple(ins[0]),
                lambda data, attrs: -data)
    assert "negate_test" in OP_REGISTRY
    spec = OP_REGISTRY["negate_test"]
    np.testing.assert_allclose(spec.compute(np.ones(3), {}), -np.ones(3))
