"""Measurement of candidate configurations on (simulated) devices.

The paper measures candidates on physical boards reached through an RPC-based
device pool (Section 5.4).  Here measurements run against the simulated
hardware models, optionally routed through the in-process RPC tracker/server
infrastructure in :mod:`repro.runtime.rpc` so the same code path — compile,
request a device, run remotely, collect timings — is exercised.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..hardware.base import MeasureResult
from .space import ConfigEntity
from .task import Task

__all__ = ["MeasureInput", "MeasureResultRecord", "LocalMeasurer", "RPCMeasurer"]


@dataclass
class MeasureInput:
    """A (task, config) pair submitted for measurement."""

    task: Task
    config: ConfigEntity


@dataclass
class MeasureResultRecord:
    """Outcome of measuring one configuration."""

    input: MeasureInput
    mean_time: float
    features: Optional[object] = None
    error: Optional[str] = None

    @property
    def valid(self) -> bool:
        return self.error is None and math.isfinite(self.mean_time)

    @property
    def gflops(self) -> float:
        if not self.valid or self.mean_time <= 0:
            return 0.0
        return self.input.task.flop / self.mean_time / 1e9


class LocalMeasurer:
    """Lower and measure configurations directly against the target's model.

    Measurement noise is drawn from an RNG derived from ``(seed, task,
    config index)`` — never from shared mutable state — so results depend
    only on *what* is measured, not on the order or concurrency of the
    measurements.  The parallel batch measurer relies on this to stay
    bit-identical with this serial path.
    """

    def __init__(self, number: int = 3, seed: int = 0, verify: bool = False):
        self.number = number
        self.seed = seed
        self.verify = verify
        self.num_measured = 0
        self.num_rejected = 0
        self._verify_cache: dict = {}

    def measure(self, inputs: Sequence[MeasureInput]) -> List[MeasureResultRecord]:
        records: List[MeasureResultRecord] = []
        for inp in inputs:
            records.append(self._measure_one(inp))
            self.num_measured += 1
        return records

    def _input_rng(self, inp: MeasureInput) -> np.random.Generator:
        """Deterministic, order-independent noise stream for one input."""
        digest = hashlib.sha256(
            f"{inp.task.name}:{inp.config.index}:{self.seed}".encode())
        return np.random.default_rng(int.from_bytes(digest.digest()[:8], "little"))

    def _build_one(self, inp: MeasureInput):
        """Builder half: lower the config and extract program features.

        Served by the shared evaluation cache — when the tuner's cost model
        already featurised this candidate while scoring it, the measurer
        reuses that work instead of re-lowering.  Duck-typed task objects
        that only provide ``lower`` keep the direct path.
        """
        task = inp.task
        if self.verify:
            self._verify_one(inp)
        if hasattr(task, "features_of"):
            return task.features_of(inp.config.index)
        from .. import tir

        return tir.extract_features(task.lower(inp.config))

    def _verify_one(self, inp: MeasureInput) -> None:
        """Statically verify the candidate's lowered program, raising the
        typed :class:`~repro.analysis.errors.TIRVerifierError` for illegal
        schedules so they are *rejected* (recorded as errored measurements)
        instead of measured as garbage.  Results are memoized per
        (task, config)."""
        from ..analysis.tir_verify import verify_func

        key = (inp.task.name, inp.config.index)
        if key not in self._verify_cache:
            try:
                verify_func(inp.task.lower(inp.config))
            except Exception as exc:  # cache the failure, re-raise each time
                self._verify_cache[key] = exc
            else:
                self._verify_cache[key] = None
        cached = self._verify_cache[key]
        if cached is not None:
            self.num_rejected += 1
            raise cached

    def _measure_one(self, inp: MeasureInput) -> MeasureResultRecord:
        try:
            features = self._build_one(inp)
        except Exception as exc:
            return MeasureResultRecord(inp, float("inf"), None, error=str(exc))
        model = inp.task.target.model
        result: MeasureResult = model.measure(features, number=self.number,
                                              rng=self._input_rng(inp))
        return MeasureResultRecord(inp, result.mean_time, features, error=result.error)


class RPCMeasurer(LocalMeasurer):
    """Measure through the RPC device pool (same protocol as the paper's
    distributed tracker, Section 5.4)."""

    def __init__(self, tracker, device_key: str, number: int = 3, seed: int = 0):
        super().__init__(number=number, seed=seed)
        self.tracker = tracker
        self.device_key = device_key

    def _measure_one(self, inp: MeasureInput) -> MeasureResultRecord:
        try:
            features = self._build_one(inp)
        except Exception as exc:
            return MeasureResultRecord(inp, float("inf"), None, error=str(exc))
        session = self.tracker.request(self.device_key)
        try:
            times = session.run_timed(features, number=self.number)
        except Exception as exc:
            return MeasureResultRecord(inp, float("inf"), features, error=str(exc))
        finally:
            session.release()
        mean = float(np.mean(times)) if times else float("inf")
        return MeasureResultRecord(inp, mean, features)
