"""Client side of the tuning service: hardened connection + dedup measurer.

:class:`ServiceClient` is the connection a tuning session holds to a
:class:`~repro.autotvm.service.server.TuningService`; sessions normally get
one implicitly by passing ``TuningOptions(service="host:port")``.
:class:`ServiceDedupMeasurer` wraps the session's ordinary batch measurer
and consults the service before measuring: candidates any client in the
fleet already measured are answered from the service's trial store, fresh
measurements are pushed back for everyone else.

The client is built to survive an unreliable service:

* **connect retries** — transient ``ECONNREFUSED``/timeouts at connection
  time are retried with exponential backoff + jitter before
  :class:`ServiceUnavailable` is raised;
* **per-RPC timeouts** — every request-reply exchange runs under
  ``rpc_timeout`` seconds of socket timeout, so a stalled server cannot
  hang a tuning session;
* **reconnect + retry** — a connection that dies mid-RPC is dropped and
  re-established (with a fresh ``HELLO`` handshake) and the RPC is
  retried.  Every RPC in the protocol is idempotent (lookups are pure,
  ``PUSH``/``RECORD`` are first-wins upserts), so a retry after an
  ambiguous failure is always safe;
* **circuit breaker** — after ``breaker_threshold`` consecutive RPC
  failures the breaker opens and calls fail fast with
  :class:`ServiceUnavailable` (no socket work) until ``breaker_reset_s``
  passes, when one half-open probe is allowed through.

:class:`ServiceDedupMeasurer` catches :class:`ServiceUnavailable` (and any
connection-level error) and degrades to pure-local measurement — logged
and counted in ``service_failures`` / ``local_fallbacks`` — instead of
crashing the session.  Because local measurement is deterministic per
``(seed, task, config)`` (see :class:`~repro.autotvm.measure.LocalMeasurer`),
a dedup hit returns exactly the value this session would have measured
itself, so neither a hit nor a degraded miss can change the tuning
trajectory of identically-seeded sessions.
"""

from __future__ import annotations

import hashlib
import logging
import os
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ...faults import inject as faults_inject
from ..cost_model import GradientBoostedTrees
from ..database import TuningLogEntry
from ..measure import MeasureInput, MeasureResultRecord
from .protocol import MSG, ServiceProtocolError, recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceDedupMeasurer", "ServiceUnavailable",
           "connect"]

logger = logging.getLogger("repro.autotvm.service")

#: (task name, target name, config index) — the dedup key of one trial
TrialKey = Tuple[str, str, int]


class ServiceUnavailable(RuntimeError):
    """The tuning service cannot be reached: connect retries were exhausted,
    an RPC failed through every retry, or the circuit breaker is open."""


def _parse_address(address: str) -> Tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"Service address must be 'host:port', got {address!r}")
    return host, int(port)


class _CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    ``allow()`` is cheap and lock-scoped; an open breaker lets one probe
    through every ``reset_s`` seconds, and a failed probe re-opens it.
    """

    def __init__(self, threshold: int = 3, reset_s: float = 5.0):
        self.threshold = threshold
        self.reset_s = reset_s
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.opens = 0                  #: times the breaker tripped open

    def allow(self) -> bool:
        with self._lock:
            if self._opened_at is None:
                return True
            return time.monotonic() - self._opened_at >= self.reset_s

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._opened_at is not None:
                # a half-open probe failed: re-open the window
                self._opened_at = time.monotonic()
            elif self._failures >= self.threshold:
                self._opened_at = time.monotonic()
                self.opens += 1

    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at >= self.reset_s:
                return "half-open"
            return "open"


class ServiceClient:
    """A fault-tolerant connection to a running tuning service.

    Thread-safe: one request-reply exchange holds the connection lock, so a
    session's measurer and its progress callbacks may share one client.
    Usable as a context manager; :meth:`close` is idempotent.

    ``timeout`` bounds each connection attempt; ``rpc_timeout`` bounds each
    request-reply exchange.  See the module docstring for the retry /
    breaker behaviour.
    """

    def __init__(self, address: str, timeout: float = 30.0, *,
                 rpc_timeout: float = 30.0,
                 connect_retries: int = 3,
                 rpc_retries: int = 2,
                 backoff_s: float = 0.05,
                 backoff_max_s: float = 2.0,
                 breaker_threshold: int = 3,
                 breaker_reset_s: float = 5.0):
        self.address = address
        self._hostport = _parse_address(address)
        self.connect_timeout = timeout
        self.rpc_timeout = rpc_timeout
        self.connect_retries = connect_retries
        self.rpc_retries = rpc_retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._breaker = _CircuitBreaker(breaker_threshold, breaker_reset_s)
        # Jittered backoff from the client's own RNG: deterministic per
        # address, never touching the global random state tuning depends on.
        digest = hashlib.sha256(f"service-client:{address}".encode())
        self._rng = random.Random(
            int.from_bytes(digest.digest()[:8], "little"))
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._closed = False
        self._ever_connected = False
        self.reconnects = 0             #: successful re-connections
        self.rpc_failures = 0           #: RPC attempts that errored
        self.server_entries = 0
        with self._lock:
            self._connect_locked()      # loud: a bad address fails here

    # ------------------------------------------------------------ transport
    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_s * (2 ** attempt), self.backoff_max_s)
        return base + self._rng.uniform(0.0, base)

    def _connect_locked(self) -> None:
        """(Re)establish the socket + HELLO handshake, with bounded,
        jittered retries on transient refusals.  Caller holds the lock."""
        host, port = self._hostport
        first_time = not self._ever_connected
        last: Optional[BaseException] = None
        for attempt in range(self.connect_retries + 1):
            sock = None
            try:
                fault = faults_inject("service.connect",
                                      address=self.address, attempt=attempt)
                if fault is not None and fault.get("action") == "refuse":
                    raise ConnectionRefusedError(
                        "fault injection: connection refused")
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout)
                sock.settimeout(self.rpc_timeout)
                send_frame(sock, MSG.HELLO, {"pid": os.getpid()})
                kind, welcome = recv_frame(sock)
                if kind != MSG.WELCOME:
                    raise ServiceProtocolError(
                        f"Expected WELCOME from {self.address}, "
                        f"got {MSG.name(kind)}")
            except (ConnectionError, socket.timeout, OSError,
                    ServiceProtocolError) as exc:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                last = exc
                if attempt < self.connect_retries:
                    time.sleep(self._backoff(attempt))
                continue
            self._sock = sock
            self.server_entries = int(welcome.get("entries", 0))
            self._ever_connected = True
            if not first_time:
                self.reconnects += 1
                logger.warning("reconnected to tuning service %s "
                               "(reconnect #%d)", self.address,
                               self.reconnects)
            return
        raise ServiceUnavailable(
            f"Cannot connect to tuning service {self.address} after "
            f"{self.connect_retries + 1} attempt(s): {last!r}") from last

    def _drop_socket_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request(self, kind: int, payload: Dict, expect: int) -> Dict:
        if not self._breaker.allow():
            raise ServiceUnavailable(
                f"Circuit breaker is open for {self.address} "
                f"(retry allowed in <= {self._breaker.reset_s:.1f}s)")
        last: Optional[BaseException] = None
        with self._lock:
            if self._closed:
                raise ServiceProtocolError(
                    f"Client for {self.address} is closed")
            for attempt in range(self.rpc_retries + 1):
                try:
                    if self._sock is None:
                        self._connect_locked()
                    send_frame(self._sock, kind, payload)
                    reply_kind, reply = recv_frame(self._sock)
                except ServiceUnavailable as exc:
                    last = exc          # connect retries exhausted inside
                    break
                except (ConnectionError, socket.timeout, OSError,
                        ServiceProtocolError) as exc:
                    # Mid-RPC death: reconnect and retry — every RPC in
                    # this protocol is idempotent, so an ambiguous failure
                    # (sent, no reply) is safe to replay.
                    last = exc
                    self.rpc_failures += 1
                    self._drop_socket_locked()
                    if attempt < self.rpc_retries:
                        time.sleep(self._backoff(attempt))
                    continue
                self._breaker.record_success()
                # Server-reported application errors are *not* availability
                # failures: the service answered.
                if reply_kind == MSG.ERROR:
                    raise ServiceProtocolError(
                        f"{MSG.name(kind)} failed on {self.address}: "
                        f"{reply.get('message')}")
                if reply_kind != expect:
                    raise ServiceProtocolError(
                        f"Expected {MSG.name(expect)} reply to "
                        f"{MSG.name(kind)}, got {MSG.name(reply_kind)}")
                return reply
        self._breaker.record_failure()
        raise ServiceUnavailable(
            f"{MSG.name(kind)} to {self.address} failed "
            f"({last!r}); the service looks down") from last

    def breaker_state(self) -> str:
        return self._breaker.state()

    def client_stats(self) -> Dict[str, object]:
        """Client-side resilience counters."""
        return {"reconnects": self.reconnects,
                "rpc_failures": self.rpc_failures,
                "breaker_opens": self._breaker.opens,
                "breaker_state": self._breaker.state()}

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drop_socket_locked()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------ trial store
    def lookup(self, keys: Sequence[TrialKey]) -> List[Optional[Dict]]:
        """Per key: ``{"time", "error"}`` if any client measured it, else
        ``None`` (aligned with ``keys``)."""
        if not keys:
            return []
        reply = self._request(MSG.LOOKUP, {"keys": [list(k) for k in keys]},
                              expect=MSG.FOUND)
        return reply["results"]

    def push_trials(self, records: Sequence[Dict]) -> int:
        """Publish raw trial measurements (dicts with ``task``, ``target``,
        ``config_index``, ``time``, optional ``error``); returns how many
        were new to the service."""
        if not records:
            return 0
        reply = self._request(MSG.PUSH, {"records": list(records)},
                              expect=MSG.ACK)
        return int(reply.get("new", 0))

    # ------------------------------------------------------------ best store
    def record_best(self, entry: TuningLogEntry) -> bool:
        """Publish a session's floored best entry to the shared database."""
        from .server import _entry_payload

        reply = self._request(MSG.RECORD, {"entry": _entry_payload(entry)},
                              expect=MSG.ACK)
        return bool(reply.get("new", 0))

    def best_for(self, task_name: str, target_name: Optional[str] = None
                 ) -> Optional[TuningLogEntry]:
        """Best known entry for a workload across every session so far."""
        from .server import entry_from_payload

        reply = self._request(MSG.BEST, {"task": task_name,
                                         "target": target_name},
                              expect=MSG.ENTRIES)
        entries = reply.get("entries", [])
        return entry_from_payload(entries[0]) if entries else None

    def warm_entries(self, operator: str, target_name: Optional[str] = None
                     ) -> List[TuningLogEntry]:
        """All shared entries of an operator family, in recording order —
        transfer-learning food for
        :meth:`~repro.autotvm.tuner.ModelBasedTuner.warm_start`."""
        from .server import entry_from_payload

        reply = self._request(MSG.WARM, {"operator": operator,
                                         "target": target_name},
                              expect=MSG.ENTRIES)
        return [entry_from_payload(p) for p in reply.get("entries", [])]

    def pretrained_model(self, operator: str, target_name: str
                         ) -> Optional[GradientBoostedTrees]:
        """The service's startup-pretrained cost model for an operator
        family on a target, or ``None`` when it has none."""
        reply = self._request(MSG.MODEL, {"operator": operator,
                                          "target": target_name},
                              expect=MSG.MODEL_SPEC)
        spec = reply.get("model")
        return GradientBoostedTrees.from_spec(spec) if spec else None

    # ------------------------------------------------------------ control
    def stats(self) -> Dict[str, int]:
        """Service-side counters (dedup hits, trials stored, clients...)."""
        return self._request(MSG.STATS, {}, expect=MSG.STATS_REPLY)

    def shutdown_service(self) -> None:
        """Ask the service to stop (its owner still joins threads via
        :meth:`~repro.autotvm.service.server.TuningService.stop`)."""
        self._request(MSG.SHUTDOWN, {}, expect=MSG.BYE)


def connect(address: str, timeout: float = 30.0, **kwargs) -> ServiceClient:
    """Connect to a tuning service at ``"host:port"``."""
    return ServiceClient(address, timeout=timeout, **kwargs)


#: errors on which the dedup measurer degrades to pure-local measurement
_DEGRADE_ERRORS = (ServiceUnavailable, ServiceProtocolError,
                   ConnectionError, OSError)


class ServiceDedupMeasurer:
    """Batch measurer that skips candidates the fleet already measured.

    Wraps the session's real measurer: each batch is first looked up on the
    service; hits become :class:`MeasureResultRecord`\\ s directly (features
    ``None`` — consumers refeaturise through the shared evaluation cache),
    misses are measured locally and pushed back for other clients.  Results
    come back in input order, so the tuner cannot tell the difference.

    A service that dies mid-run does not kill the session: lookup/push
    failures are logged, counted (``service_failures``), and the batch is
    measured purely locally (``local_fallbacks``).  Thanks to deterministic
    per-``(seed, task, config)`` measurement the results are bit-identical
    either way; only the dedup savings are lost.  Every batch retries the
    service — the client's circuit breaker makes that cheap while it is
    down, and dedup resumes if it comes back.
    """

    def __init__(self, base, client: ServiceClient):
        self.base = base
        self.client = client
        self.dedup_hits = 0         #: measurements skipped thanks to the fleet
        self.service_failures = 0   #: lookup/push calls that failed
        self.local_fallbacks = 0    #: candidates measured without the service
        self._was_degraded = False

    @property
    def number(self) -> int:
        return self.base.number

    @property
    def seed(self) -> int:
        return self.base.seed

    @property
    def num_measured(self) -> int:
        return self.base.num_measured

    def _note_failure(self, what: str, exc: BaseException) -> None:
        self.service_failures += 1
        if not self._was_degraded:
            logger.warning(
                "tuning service %s failed (%s: %r); degrading to pure-local "
                "measurement — results are unchanged, dedup savings lost",
                self.client.address, what, exc)
            self._was_degraded = True

    def measure(self, inputs: Sequence[MeasureInput]
                ) -> List[MeasureResultRecord]:
        keys = [(inp.task.name, inp.task.target.name, inp.config.index)
                for inp in inputs]
        try:
            hits = self.client.lookup(keys)
        except _DEGRADE_ERRORS as exc:
            self._note_failure("lookup", exc)
            hits = [None] * len(inputs)
            self.local_fallbacks += len(inputs)
        else:
            if self._was_degraded:
                logger.info("tuning service %s is back; dedup resumed",
                            self.client.address)
                self._was_degraded = False
        results: List[Optional[MeasureResultRecord]] = [None] * len(inputs)
        misses: List[MeasureInput] = []
        positions: List[int] = []
        for i, (inp, hit) in enumerate(zip(inputs, hits)):
            if hit is None:
                misses.append(inp)
                positions.append(i)
            else:
                self.dedup_hits += 1
                results[i] = MeasureResultRecord(inp, float(hit["time"]),
                                                 None, error=hit.get("error"))
        if misses:
            measured = self.base.measure(misses)
            try:
                self.client.push_trials([
                    {"task": rec.input.task.name,
                     "target": rec.input.task.target.name,
                     "config_index": rec.input.config.index,
                     "time": rec.mean_time, "error": rec.error,
                     # feature vectors ride along so the service can pretrain
                     # its cost models on every trial the fleet ever measured
                     "features": ([float(v) for v in rec.features.vector()]
                                  if rec.features is not None else None)}
                    for rec in measured])
            except _DEGRADE_ERRORS as exc:
                self._note_failure("push_trials", exc)
            for pos, rec in zip(positions, measured):
                results[pos] = rec
        return results
