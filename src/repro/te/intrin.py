"""Tensor intrinsic declarations (Section 4.3: Tensorization).

A :class:`TensorIntrin` pairs a behavioural description — expressed in the
same tensor expression language used for operators — with a lowering rule
that emits hardware intrinsic calls.  The ``tensorize`` schedule primitive
matches a sub-computation against the declared behaviour and replaces the
matched loop nest with the intrinsic's lowered form.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .expr import Call, Expr, IntImm, simplify
from .tensor import ComputeOp, IterVar, Tensor

__all__ = ["TensorIntrin", "decl_tensor_intrin", "hardware_intrin"]


def hardware_intrin(name: str, *args: object, dtype: str = "handle") -> Call:
    """Build a call expression to a named hardware intrinsic.

    Mirrors ``t.hardware_intrin("gemm8x8", ww_ptr, xx_ptr, zz_ptr)`` from the
    paper's tensor-intrinsic declaration example.
    """
    from .expr import as_expr

    return Call(name, [as_expr(a) for a in args], dtype=dtype, call_type="hardware")


class TensorIntrin:
    """A declared hardware tensor intrinsic.

    Parameters
    ----------
    op:
        The :class:`ComputeOp` describing the intrinsic's behaviour.
    lower_rule:
        Callable ``(inputs, outputs) -> (compute, reset, update)`` returning
        intrinsic call expressions, or a single call expression.  ``reset``
        and ``update`` may be ``None`` when the intrinsic has no split
        reduction form.
    name:
        Human readable name used in lowered code and cost features.
    """

    def __init__(self, op: ComputeOp, lower_rule: Callable, name: str = ""):
        self.op = op
        self.lower_rule = lower_rule
        self.name = name or op.name
        self.inputs = op.input_tensors()
        self.output = op.output(0)

    @property
    def output_shape(self) -> List[int]:
        return [int(simplify(dim).value) for dim in self.op.shape]

    @property
    def flop(self) -> int:
        """Floating point (or MAC) operations performed per intrinsic call."""
        count = 1
        for dim in self.output_shape:
            count *= dim
        for axis in self.op.reduce_axis:
            count *= axis.extent_value()
        # one multiply and one add per reduction element
        return count * 2

    def lower(self) -> Dict[str, Optional[Call]]:
        """Run the lowering rule and normalise its result."""
        result = self.lower_rule(list(self.inputs), [self.output])
        if isinstance(result, Call):
            return {"compute": result, "reset": None, "update": None}
        if isinstance(result, (tuple, list)):
            parts = list(result) + [None] * (3 - len(result))
            return {"compute": parts[0], "reset": parts[1], "update": parts[2]}
        raise TypeError("Tensor intrinsic lowering rule must return a Call or tuple")

    def __repr__(self) -> str:
        shape = "x".join(str(s) for s in self.output_shape)
        return f"TensorIntrin({self.name}, out={shape})"


def decl_tensor_intrin(op_or_tensor: object, lower_rule: Callable,
                       name: str = "") -> TensorIntrin:
    """Declare a tensor intrinsic from a behaviour description.

    Matches the paper's ``t.decl_tensor_intrin(y.op, gemm_intrin_lower)`` API.
    Accepts either the :class:`ComputeOp` or its output :class:`Tensor`.
    """
    if isinstance(op_or_tensor, Tensor):
        op = op_or_tensor.op
    else:
        op = op_or_tensor
    if not isinstance(op, ComputeOp):
        raise TypeError("decl_tensor_intrin expects a ComputeOp behaviour description")
    return TensorIntrin(op, lower_rule, name=name)
