"""Deployable runtime: NDArray, graph executor and the RPC device pool."""

from .graph_executor import GraphExecutor, create
from .ndarray import Context, NDArray, array, cpu, empty, gpu, mali, vdla
from .rpc import RPCServer, RPCSession, Tracker, connect_tracker

__all__ = [
    "Context",
    "GraphExecutor",
    "NDArray",
    "RPCServer",
    "RPCSession",
    "Tracker",
    "array",
    "connect_tracker",
    "cpu",
    "create",
    "empty",
    "gpu",
    "mali",
    "vdla",
]
