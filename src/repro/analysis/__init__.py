"""Compile-time IR verification and static analysis.

The analysis layer certifies compiler output instead of trusting it:

* :mod:`~repro.analysis.graph_verify` — graph-IR well-formedness, shape and
  dtype re-inference, fused-group legality, layout consistency and the
  memory-plan alias audit;
* :mod:`~repro.analysis.tir_verify` — static out-of-bounds detection on
  lowered loop nests (interval analysis with linear-form cancellation),
  def-before-use of loop variables and buffers, and the parallel-hazard
  detector for ``parallel``/``vectorize`` annotations;
* :mod:`~repro.analysis.instrument` — :class:`VerifyInstrument`, which hooks
  the pass manager so ``repro.compile(..., verify=True)`` re-verifies the
  graph after every pass;
* :mod:`~repro.analysis.mutate` — the seeded IR-mutation harness proving
  each check actually fires.

All violations raise a typed :class:`VerifierError` subclass from
:mod:`~repro.analysis.errors` naming the check, the IR object and the pass.
"""

from .errors import (
    DanglingInputError,
    DtypeMismatchError,
    DuplicateNodeNameError,
    FusionLegalityError,
    GraphVerifierError,
    LayoutError,
    MemoryAliasError,
    OutOfBoundsError,
    ParallelHazardError,
    ShapeMismatchError,
    StorageSizeError,
    TIRVerifierError,
    TopologicalOrderError,
    UnknownOperatorError,
    UseBeforeDefError,
    VerifierError,
)
from .graph_verify import (
    verify_fusion,
    verify_graph,
    verify_layout,
    verify_memory_plan,
    verify_shapes,
    verify_well_formed,
)
from .instrument import VerifyInstrument
from .mutate import MUTATIONS, run_all, run_mutation
from .tir_verify import verify_func

__all__ = [
    "VerifierError",
    "GraphVerifierError",
    "TIRVerifierError",
    "DuplicateNodeNameError",
    "TopologicalOrderError",
    "DanglingInputError",
    "UnknownOperatorError",
    "ShapeMismatchError",
    "DtypeMismatchError",
    "FusionLegalityError",
    "LayoutError",
    "MemoryAliasError",
    "StorageSizeError",
    "OutOfBoundsError",
    "UseBeforeDefError",
    "ParallelHazardError",
    "verify_graph",
    "verify_well_formed",
    "verify_shapes",
    "verify_fusion",
    "verify_layout",
    "verify_memory_plan",
    "verify_func",
    "VerifyInstrument",
    "MUTATIONS",
    "run_mutation",
    "run_all",
]
