"""Dynamic-batching inference serving (``repro.serve``).

The paper's end-to-end claim is compile-once, serve-anywhere; this module
adds the serving half: :func:`serve` turns a compiled module (or an exported
artifact path) into an :class:`InferenceEngine` that

* queues concurrent requests from many client threads,
* coalesces them along the graph's batch axis with dynamic batching
  (``max_batch`` requests per batch, waiting at most ``timeout_ms`` for the
  batch to fill),
* round-robins the batches across a pool of per-device
  :class:`~repro.runtime.executor.Executor` workers (multi-GPU or
  heterogeneous; workers can hold leases on a
  :class:`~repro.runtime.rpc.Tracker` device pool), and
* reports structured throughput / latency / batch-occupancy statistics.

Latency accounting is simulated-consistent: a coalesced batch costs the
per-batch kernel estimates of the batched workload (what compiling the model
at that batch size would report), never the sum of per-request times.
Functional outputs, however, are computed per request on the native-batch
kernels so every request's result is bit-identical to a solo execution (the
NumPy BLAS kernels are not bitwise batch-invariant).
"""

from __future__ import annotations

import os
import queue
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.module import CompiledModule
from .executor import Executor
from .ndarray import Device, DeviceLike, device as as_device

__all__ = ["serve", "InferenceEngine", "InferenceFuture"]

_SHUTDOWN = object()


# ---------------------------------------------------------------------------
# Batch cost model
# ---------------------------------------------------------------------------

class _BatchCostModel:
    """Simulated per-batch latency of the module at coalesced batch sizes.

    For the module's native batch size the recorded kernel times are used
    verbatim (including tuned provenance).  Larger coalesced batches are
    re-estimated by cloning the optimized graph, scaling the batch axis and
    asking the operator-level cost model for each fused kernel — i.e. exactly
    the per-batch estimate a compile at that batch size would produce (with
    the untuned fallback heuristic).  Results are memoised per batch size.
    """

    def __init__(self, module: CompiledModule, data_inputs: Sequence[str],
                 native_rows: int):
        from .artifact import graph_to_json

        self.module = module
        self._data_inputs = set(data_inputs)
        self.native_rows = native_rows
        self._graph_json = graph_to_json(module.graph)
        self._lock = threading.Lock()
        self._cache: Dict[int, Tuple[float, List[Tuple[str, float]]]] = {
            native_rows: (module.total_time,
                          [(k.name, k.time_seconds) for k in module.kernels]),
        }
        self._targets = {module.target.name: module.target}

    def _target_for(self, name: str):
        from ..hardware.target import create_target

        if name not in self._targets:
            self._targets[name] = create_target(name,
                                                seed=self.module.target.seed)
        return self._targets[name]

    def times_for(self, rows: int) -> Tuple[float, List[Tuple[str, float]]]:
        """``(total_seconds, [(kernel name, seconds)])`` at ``rows`` total
        batch rows across the coalesced requests."""
        with self._lock:
            if rows in self._cache:
                return self._cache[rows]
        total, per_kernel = self._estimate(rows)
        with self._lock:
            self._cache[rows] = (total, per_kernel)
        return total, per_kernel

    def _estimate(self, rows: int) -> Tuple[float, List[Tuple[str, float]]]:
        from ..compiler.driver import framework_overhead
        from ..graph.op_timing import kernel_time
        from .artifact import graph_from_json

        scale = rows // self.native_rows
        clone = graph_from_json(self._graph_json)
        for node in clone.input_nodes:
            if node.name in self._data_inputs:
                node.shape = (node.shape[0] * scale,) + tuple(node.shape[1:])
        clone.infer_shapes({})
        nodes_by_name = {node.name: node for node in clone.nodes}

        per_kernel: List[Tuple[str, float]] = []
        total = 0.0
        for kernel in self.module.kernels:
            target = self._target_for(kernel.device)
            master = nodes_by_name[kernel.group.master.name]
            seconds = kernel_time(master, target, fused=False).time
            for member in kernel.group.nodes:
                if member.name != master.name:
                    seconds += kernel_time(nodes_by_name[member.name], target,
                                           fused=True).time
            seconds += framework_overhead(target)
            per_kernel.append((kernel.name, seconds))
            total += seconds
        return total, per_kernel


# ---------------------------------------------------------------------------
# Requests and futures
# ---------------------------------------------------------------------------

class InferenceFuture:
    """Handle to one submitted request; resolves to the request's outputs."""

    def __init__(self):
        self._event = threading.Event()
        self._outputs: Optional[List[np.ndarray]] = None
        self._error: Optional[BaseException] = None
        #: filled at completion: simulated seconds of the batch that served
        #: this request, its size in requests, and observed wall latency
        self.simulated_latency: Optional[float] = None
        self.batch_size: Optional[int] = None
        self.wall_latency: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> List[np.ndarray]:
        if not self._event.wait(timeout):
            raise TimeoutError("Inference request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._outputs

    # -- engine side -----------------------------------------------------------
    def _resolve(self, outputs: List[np.ndarray]) -> None:
        self._outputs = outputs
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Request:
    __slots__ = ("inputs", "future", "enqueued_at")

    def __init__(self, inputs: Dict[str, np.ndarray]):
        self.inputs = inputs
        self.future = InferenceFuture()
        self.enqueued_at = time.monotonic()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class InferenceEngine:
    """Queueing, dynamically batching, multi-device inference engine.

    Create one with :func:`serve`; submit work with :meth:`infer` (blocking)
    or :meth:`submit` (returns an :class:`InferenceFuture`); inspect
    :meth:`stats`; stop with :meth:`shutdown` or by using the engine as a
    context manager.
    """

    def __init__(self, module: CompiledModule, *,
                 devices: Union[None, int, Sequence[DeviceLike]] = None,
                 max_batch: int = 8, timeout_ms: float = 2.0,
                 tracker=None, rpc_key: Optional[str] = None,
                 lease_timeout: float = 10.0, pool: str = "thread",
                 bundle_path: Optional[str] = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', "
                             f"got {pool!r}")
        if pool == "process" and tracker is not None:
            raise ValueError(
                "pool='process' workers own their devices directly and "
                "cannot hold tracker leases; serve with pool='thread' to "
                "combine dynamic batching with an RPC device pool")
        self.pool_kind = pool
        self.module = module
        self.devices = self._resolve_devices(module, devices)
        self.timeout_s = max(timeout_ms, 0.0) / 1000.0

        reference = Executor(module, self.devices[0])
        self._reference = reference
        specs = reference.input_specs
        batchable = (bool(specs)
                     and all(s.shape and len(s.shape) >= 1 for s in specs)
                     and len({s.shape[0] for s in specs}) == 1
                     and specs[0].shape[0] >= 1)
        if not batchable and max_batch > 1:
            raise ValueError(
                "Dynamic batching needs every graph data input to share one "
                "leading batch axis; this module's inputs are "
                f"[{reference.describe_inputs()}] — serve with max_batch=1")
        self.max_batch = max_batch
        self.native_batch = specs[0].shape[0] if batchable else 1
        self._cost = _BatchCostModel(module, [s.name for s in specs],
                                     self.native_batch if batchable else 1)

        # Optional RPC leases: one exclusive device lease per worker.
        self._sessions = []
        if tracker is not None:
            if rpc_key is None:
                raise ValueError("serve(tracker=...) also needs rpc_key= (the "
                                 "device key registered with the tracker)")
            try:
                for _ in self.devices:
                    self._sessions.append(
                        tracker.request(rpc_key, timeout=lease_timeout))
            except Exception:
                for session in self._sessions:
                    session.release()
                raise

        # Execution back-end: per-device Executors on worker *threads*
        # (pool="thread"), or one worker *process* per device mapped onto a
        # shared-memory parameter arena (pool="process" — true parallelism
        # outside the GIL; see runtime/procpool/).
        self._procpool = None
        self._owned_bundle: Optional[str] = None
        if pool == "process":
            from .procpool import ModuleWorkerPool

            if bundle_path is None:
                # Workers boot from an exported artifact; when handed a live
                # module the engine exports (and owns) a temporary bundle.
                handle, bundle_path = tempfile.mkstemp(prefix="repro-serve-",
                                                       suffix=".module")
                os.close(handle)
                self._owned_bundle = bundle_path
                from .artifact import export_module

                try:
                    export_module(module, bundle_path)
                except BaseException:
                    os.unlink(bundle_path)
                    raise
            try:
                self._procpool = ModuleWorkerPool(module, bundle_path,
                                                  self.devices)
            except BaseException:
                if self._owned_bundle is not None:
                    os.unlink(self._owned_bundle)
                raise
            self._executors: List[Executor] = []
        else:
            self._executors = [Executor(module, dev) for dev in self.devices]
        self._requests: "queue.Queue" = queue.Queue()
        self._worker_queues = [queue.Queue() for _ in self.devices]
        #: indices of worker threads that died (never dispatch to them) and
        #: the error that killed each — see _abandon_worker
        self._dead_workers: set = set()
        self._worker_errors: Dict[int, BaseException] = {}

        # -- statistics (guarded by _stats_lock) -------------------------------
        self._stats_lock = threading.Lock()
        self._n_requests = 0
        self._n_batches = 0
        self._occupancy: Dict[int, int] = {}
        self._wall_latencies: List[float] = []
        self._sim_latencies: List[float] = []
        self._device_busy = [0.0 for _ in self.devices]
        self._started_at = time.monotonic()
        self._stopped_at: Optional[float] = None

        self._closed = False
        #: orders submit() puts against the shutdown sentinel, so no request
        #: can land behind the sentinel and silently never resolve
        self._submit_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker_loop, args=(i,), daemon=True,
                             name=f"repro-serve-worker-{self.devices[i]}")
            for i in range(len(self.devices))]
        for worker in self._workers:
            worker.start()
        self._batcher = threading.Thread(target=self._batcher_loop,
                                         daemon=True, name="repro-serve-batcher")
        self._batcher.start()

    # ------------------------------------------------------------------ setup
    @staticmethod
    def _resolve_devices(module: CompiledModule,
                         devices: Union[None, int, Sequence[DeviceLike]]
                         ) -> List[Device]:
        kind = module.target.device_type
        if devices is None:
            return [Device(kind, 0)]
        if isinstance(devices, int):
            if devices < 1:
                raise ValueError(f"devices must be >= 1, got {devices}")
            return [Device(kind, index) for index in range(devices)]
        resolved = [as_device(dev) for dev in devices]
        if not resolved:
            raise ValueError("devices must not be empty")
        return resolved

    # ------------------------------------------------------------------ client API
    def submit(self, inputs: Optional[Dict[str, np.ndarray]] = None,
               **named) -> InferenceFuture:
        """Enqueue one request; returns a future resolving to the outputs
        (a list of NumPy arrays, one per graph output)."""
        if self._closed:
            raise RuntimeError("InferenceEngine has been shut down")
        merged = dict(inputs or {})
        merged.update(named)
        # Validate in the caller's thread so bad requests fail fast and never
        # poison a batch.  Inputs are copied: the batch executes later on a
        # worker thread, and a caller reusing its buffer must not corrupt an
        # in-flight request.
        validated = self._reference._validate(merged)
        for name, value in validated.items():
            validated[name] = np.array(self._reference._as_numpy(value))
        for spec in self._reference.input_specs:
            value = validated[spec.name]
            if spec.shape is not None and tuple(value.shape) != spec.shape:
                raise ValueError(
                    f"Input {spec.name!r} has shape {tuple(value.shape)}, "
                    f"expected {spec.shape} (one native-batch request); "
                    f"expected inputs: {self._reference.describe_inputs()}")
        request = _Request(validated)
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("InferenceEngine has been shut down")
            self._requests.put(request)
        return request.future

    def infer(self, inputs: Optional[Dict[str, np.ndarray]] = None,
              timeout: Optional[float] = None, **named) -> List[np.ndarray]:
        """Blocking inference: submit one request and wait for its outputs."""
        return self.submit(inputs, **named).result(timeout)

    def infer_many(self, requests: Sequence[Dict[str, np.ndarray]],
                   timeout: Optional[float] = None) -> List[List[np.ndarray]]:
        """Submit many requests at once (letting them coalesce) and collect
        all results in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------ batching
    def _batcher_loop(self) -> None:
        while True:
            item = self._requests.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            deadline = time.monotonic() + self.timeout_s
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._requests.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)
            self._dispatch(batch)
            if stop:
                break
        for worker_queue in self._worker_queues:
            worker_queue.put(_SHUTDOWN)

    def _dispatch(self, batch: List[_Request]) -> None:
        with self._stats_lock:
            alive = [i for i in range(len(self._worker_queues))
                     if i not in self._dead_workers]
            if alive:
                index = alive[self._n_batches % len(alive)]
                self._n_batches += 1
                self._occupancy[len(batch)] = \
                    self._occupancy.get(len(batch), 0) + 1
        if not alive:
            error = RuntimeError(
                "every serving worker has died; the engine cannot serve "
                f"(first failure: {next(iter(self._worker_errors.values()), None)!r})")
            for request in batch:
                request.future._reject(error)
            return
        self._worker_queues[index].put(batch)
        # Close the dispatch/death race: the worker may have died between
        # the aliveness check and the put, leaving this batch stranded.
        with self._stats_lock:
            died = index in self._dead_workers
        if died:
            self._drain_rejecting(index)

    # ------------------------------------------------------------------ workers
    def _worker_loop(self, index: int) -> None:
        worker_queue = self._worker_queues[index]
        batch: Optional[List[_Request]] = None
        try:
            while True:
                batch = worker_queue.get()
                if batch is _SHUTDOWN:
                    batch = None
                    break
                try:
                    if self._sessions:
                        self._sessions[index].execute(self._run_batch, index,
                                                      batch)
                    else:
                        self._run_batch(index, batch)
                except Exception as exc:
                    for request in batch:
                        if not request.future.done():
                            request.future._reject(exc)
                batch = None
        except BaseException as exc:   # noqa: BLE001 — see _abandon_worker
            # The batch in flight when the thread died was already popped
            # from the queue — reject it here or its callers hang forever.
            if batch is not None:
                for request in batch:
                    if not request.future.done():
                        request.future._reject(exc)
            self._abandon_worker(index, exc)
            raise
        finally:
            # The worker owns its device lease: release only once no more
            # batches can reach it, so a shutdown(wait=False) can never yank
            # the session out from under a queued batch.
            if self._sessions:
                self._sessions[index].release()

    def _abandon_worker(self, index: int, error: BaseException) -> None:
        """A worker thread is dying: propagate failure, never hang clients.

        Every future already queued to the worker is rejected, and
        :meth:`_dispatch` stops routing new batches to it (rejecting
        immediately once no workers remain).  The process pool honours the
        same contract one level down — a worker *process* crash surfaces as
        an exception in :meth:`_run_batch`, resolving every pending future —
        so no failure mode leaves a caller blocked on ``future.result()``.
        """
        with self._stats_lock:
            self._dead_workers.add(index)
            self._worker_errors.setdefault(index, error)
        self._drain_rejecting(index)

    def _drain_rejecting(self, index: int) -> None:
        with self._stats_lock:
            cause = self._worker_errors.get(index)
        error = RuntimeError(
            f"serving worker for {self.devices[index]} died: {cause!r}")
        error.__cause__ = cause
        worker_queue = self._worker_queues[index]
        while True:
            try:
                batch = worker_queue.get_nowait()
            except queue.Empty:
                return
            if batch is _SHUTDOWN:
                continue
            for request in batch:
                if not request.future.done():
                    request.future._reject(error)

    def _run_batch(self, index: int, batch: List[_Request]) -> None:
        rows = len(batch) * self.native_batch
        try:
            batch_time, _per_kernel = self._cost.times_for(rows)
        except Exception as exc:
            for request in batch:
                request.future._reject(exc)
            return
        if self._procpool is not None:
            # One round trip to worker process `index`: inputs and outputs
            # travel through a per-batch shm arena; each entry is the
            # request's output arrays or its per-request error.  Worker death
            # is respawned + retried inside the pool; an exhausted retry
            # raises and _worker_loop rejects the whole batch.
            outcomes = self._procpool.run_batch(
                index, [request.inputs for request in batch])
        else:
            executor = self._executors[index]
            outcomes = []
            for request in batch:
                try:
                    outcomes.append(executor._execute(request.inputs).outputs)
                except Exception as exc:
                    outcomes.append(exc)
        wall_latencies = []
        for request, outcome in zip(batch, outcomes):
            future = request.future
            if isinstance(outcome, Exception):
                future._reject(outcome)
                continue
            future.simulated_latency = batch_time
            future.batch_size = len(batch)
            future.wall_latency = time.monotonic() - request.enqueued_at
            wall_latencies.append(future.wall_latency)
            future._resolve(outcome)
        with self._stats_lock:
            self._n_requests += len(batch)
            self._device_busy[index] += batch_time
            self._sim_latencies.extend([batch_time] * len(batch))
            self._wall_latencies.extend(wall_latencies)

    # ------------------------------------------------------------------ stats
    def estimated_batch_time(self, n_requests: int) -> float:
        """Simulated seconds of one coalesced batch of ``n_requests``."""
        return self._cost.times_for(n_requests * self.native_batch)[0]

    @staticmethod
    def _percentiles(samples: List[float]) -> Dict[str, float]:
        if not samples:
            return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
        data = np.asarray(samples)
        return {"p50_ms": float(np.percentile(data, 50) * 1e3),
                "p99_ms": float(np.percentile(data, 99) * 1e3),
                "mean_ms": float(np.mean(data) * 1e3)}

    def stats(self) -> Dict[str, object]:
        """Structured serving statistics.

        ``simulated`` timings come from the per-batch kernel estimates (the
        engine's simulated clock: each device's busy time is the sum of its
        batch times; the makespan is the busiest device); ``wall`` timings
        are host wall-clock observations of this Python process.
        """
        with self._stats_lock:
            requests = self._n_requests
            batches = self._n_batches
            occupancy = dict(sorted(self._occupancy.items()))
            busy = list(self._device_busy)
            wall = list(self._wall_latencies)
            sim = list(self._sim_latencies)
            end = self._stopped_at or time.monotonic()
            duration = max(end - self._started_at, 1e-12)
        makespan = max(busy) if busy else 0.0
        mean_occupancy = (sum(size * count for size, count in occupancy.items())
                          / batches) if batches else 0.0
        result = {
            "requests": requests,
            "batches": batches,
            "pool": self.pool_kind,
            "devices": [str(dev) for dev in self.devices],
            "max_batch": self.max_batch,
            "native_batch": self.native_batch,
            "batch_occupancy": occupancy,
            "mean_batch_occupancy": mean_occupancy,
            "simulated": {
                "busy_seconds_per_device": {str(dev): seconds for dev, seconds
                                            in zip(self.devices, busy)},
                "makespan_seconds": makespan,
                "throughput_rps": requests / makespan if makespan else 0.0,
                "latency": self._percentiles(sim),
            },
            "wall": {
                "duration_seconds": duration,
                "throughput_rps": requests / duration,
                "latency": self._percentiles(wall),
            },
        }
        if self._procpool is not None:
            result["process_workers"] = self._procpool.stats()
        return result

    # ------------------------------------------------------------------ lifecycle
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests, drain the queues and stop the workers.

        Already-enqueued requests are still served.  Each worker releases
        its tracker lease (if any) as it exits; with ``wait=False`` that
        happens asynchronously once the queues drain.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._requests.put(_SHUTDOWN)
        if wait:
            self._batcher.join()
            for worker in self._workers:
                worker.join()
            self._finalize_pool()
        elif self._procpool is not None or self._owned_bundle is not None:
            threading.Thread(target=self._deferred_finalize, daemon=True,
                             name="repro-serve-finalize").start()
        with self._stats_lock:
            self._stopped_at = time.monotonic()

    def _deferred_finalize(self) -> None:
        self._batcher.join()
        for worker in self._workers:
            worker.join()
        self._finalize_pool()

    def _finalize_pool(self) -> None:
        """Stop the worker processes (if any), unlink every shm segment the
        pool created, and delete the engine-owned temporary bundle."""
        if self._procpool is not None:
            self._procpool.shutdown()
        if self._owned_bundle is not None:
            try:
                os.unlink(self._owned_bundle)
            except OSError:
                pass
            self._owned_bundle = None

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def serve(module_or_path: Union[CompiledModule, str], *,
          devices: Union[None, int, Sequence[DeviceLike]] = None,
          max_batch: int = 8, timeout_ms: float = 2.0,
          tracker=None, rpc_key: Optional[str] = None,
          pool: str = "thread") -> InferenceEngine:
    """Start an inference engine over a compiled module or artifact path.

    Parameters
    ----------
    module_or_path:
        A :class:`CompiledModule`, or the path of an artifact bundle written
        by ``module.export(path)`` (loaded with no recompilation).
    devices:
        Device pool to round-robin batches across: a count (``2`` means
        ``gpu:0`` and ``gpu:1`` for a GPU module), an explicit list of
        devices / specs (``["gpu:0", "gpu:1"]``), or ``None`` for one device.
    max_batch / timeout_ms:
        Dynamic batching knobs: coalesce up to ``max_batch`` requests,
        waiting at most ``timeout_ms`` after the first request for the batch
        to fill.
    tracker / rpc_key:
        Lease each worker's device exclusively from an
        :class:`~repro.runtime.rpc.Tracker` pool (the paper's remote device
        pool), releasing the leases on shutdown.
    pool:
        ``"thread"`` (default) runs one worker thread + Executor per device;
        ``"process"`` runs one worker *process* per device over a
        shared-memory parameter arena (true parallelism outside the GIL;
        outputs stay bit-identical).  Incompatible with ``tracker=``.
    """
    bundle_path: Optional[str] = None
    if isinstance(module_or_path, CompiledModule):
        module = module_or_path
    else:
        from .artifact import load_module

        module = load_module(module_or_path)
        # Process workers can boot straight from the caller's bundle — no
        # re-export needed.
        bundle_path = str(module_or_path)
    return InferenceEngine(module, devices=devices, max_batch=max_batch,
                           timeout_ms=timeout_ms, tracker=tracker,
                           rpc_key=rpc_key, pool=pool,
                           bundle_path=bundle_path)
