"""Whole-graph autotuning helper.

Extracts the unique heavy-operator workloads from a graph, tunes each with
the ML-based explorer (or another tuner), and records the best configuration
per workload in a :class:`~repro.autotvm.database.TuningDatabase` that
``graph.build`` consumes.  This is the "extract tasks → tune → compile with
history" flow TVM users follow and the one the end-to-end figures rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..autotvm.database import TuningDatabase
from ..autotvm.measure import LocalMeasurer
from ..autotvm.task import Task
from ..autotvm.tuner import GATuner, ModelBasedTuner, RandomTuner
from ..hardware.target import Target
from .ir import Graph
from .op_timing import make_task_for_node, workload_key

__all__ = ["extract_tasks", "tune_graph", "tune_tasks"]

_TUNERS = {
    "model": ModelBasedTuner,
    "random": RandomTuner,
    "ga": GATuner,
}


def extract_tasks(graph: Graph, target: Target,
                  input_shapes: Optional[Dict[str, Tuple[int, ...]]] = None
                  ) -> List[Task]:
    """Unique tuning tasks for the heavy operators of a graph."""
    if input_shapes is not None:
        graph.infer_shapes(input_shapes)
    tasks: Dict[str, Task] = {}
    for node in graph.op_nodes:
        if node.op not in ("conv2d", "depthwise_conv2d", "dense"):
            continue
        task = make_task_for_node(node, target)
        if task is not None and task.name not in tasks:
            tasks[task.name] = task
    return list(tasks.values())


def tune_tasks(tasks: List[Task], n_trial: int = 48, tuner: str = "model",
               database: Optional[TuningDatabase] = None,
               seed: int = 0, verbose: bool = False) -> TuningDatabase:
    """Tune each task and record the best configuration."""
    database = database or TuningDatabase()
    tuner_cls = _TUNERS[tuner]
    for index, task in enumerate(tasks):
        instance = tuner_cls(task, seed=seed + index)
        measurer = LocalMeasurer(number=2, seed=seed + index)
        best = instance.tune(n_trial=n_trial, measurer=measurer, batch_size=8)
        database.record(task, best, instance.best_time)
        if verbose:
            print(f"[tune] {task.name}: best {instance.best_time * 1e6:.1f} us "
                  f"({len(task.config_space)} configs, {n_trial} trials)")
    return database


def tune_graph(graph: Graph, target: Target,
               input_shapes: Dict[str, Tuple[int, ...]],
               n_trial: int = 48, tuner: str = "model",
               database: Optional[TuningDatabase] = None,
               seed: int = 0, verbose: bool = False) -> TuningDatabase:
    """Extract and tune every heavy workload in ``graph`` for ``target``."""
    tasks = extract_tasks(graph, target, input_shapes)
    return tune_tasks(tasks, n_trial=n_trial, tuner=tuner, database=database,
                      seed=seed, verbose=verbose)
