"""Tests for loop-program feature extraction and the hardware models."""

import math

import numpy as np
import pytest

from repro import te, tir
from repro.hardware import (
    EmbeddedCPU,
    MobileGPU,
    ServerGPU,
    VDLAAccelerator,
    arm_cpu,
    create_target,
    cuda,
    mali,
    vdla,
)
from repro.topi import nn
from repro.topi.schedules import gpu as gpu_sched


def _tiled_matmul_features(size=256, tile=16, vectorize=False, parallel=False):
    A = te.placeholder((size, size), name="A")
    B = te.placeholder((size, size), name="B")
    k = te.reduce_axis((0, size), name="k")
    C = te.compute((size, size), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k),
                   name="C")
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    io, jo, ii, ji = s[C].tile(i, j, tile, tile)
    ko, ki = s[C].split(k, factor=tile)
    s[C].reorder(io, jo, ko, ii, ji, ki)
    if vectorize:
        s[C].vectorize(ji)
    if parallel:
        s[C].parallel(io)
    return tir.extract_features(tir.lower(s, [A, B, C]))


def test_flop_count_matches_analytic():
    size = 64
    features = _tiled_matmul_features(size=size, tile=8)
    expected = 2.0 * size ** 3
    assert features.flops == pytest.approx(expected, rel=0.01)


def test_cache_traffic_prefers_moderate_tiles():
    small = _tiled_matmul_features(size=256, tile=2).cache_aware_traffic(32 * 1024)
    good = _tiled_matmul_features(size=256, tile=32).cache_aware_traffic(32 * 1024)
    huge = _tiled_matmul_features(size=256, tile=128).cache_aware_traffic(32 * 1024)
    assert good < small
    assert good < huge


def test_annotation_features_detected():
    features = _tiled_matmul_features(vectorize=True, parallel=True)
    assert features.vector_lanes > 1
    assert features.parallel_extent > 1
    plain = _tiled_matmul_features()
    assert plain.vector_lanes == 1.0
    assert plain.parallel_extent == 1.0


def test_feature_vector_fixed_length():
    a = _tiled_matmul_features(size=64)
    b = _tiled_matmul_features(size=256, vectorize=True)
    assert len(a.to_vector()) == len(b.to_vector()) == len(tir.FEATURE_NAMES)


def test_gpu_model_rewards_parallelism():
    gpu = ServerGPU()
    A = te.placeholder((256, 256), name="A")
    B = te.placeholder((256, 256), name="B")
    C = nn.matmul(A, B)
    threaded = gpu_sched.schedule_matmul_gpu(A, B, C, use_shared=False,
                                             tile=8, threads=8)
    t_threaded = gpu.estimate(tir.extract_features(tir.lower(threaded, [A, B, C])))
    serial = te.create_schedule(C.op)
    t_serial = gpu.estimate(tir.extract_features(tir.lower(serial, [A, B, C])))
    assert t_threaded < t_serial


def test_gpu_model_rejects_oversized_shared_memory():
    gpu = ServerGPU()
    features = tir.ProgramFeatures()
    features.allocation_bytes["shared"] = 10 * (1 << 20)
    assert math.isinf(gpu.estimate(features))


def test_cpu_model_rewards_parallel_and_vectorize():
    cpu = EmbeddedCPU()
    base = cpu.estimate(_tiled_matmul_features(size=128, tile=16))
    improved = cpu.estimate(_tiled_matmul_features(size=128, tile=16,
                                                   vectorize=True, parallel=True))
    assert improved < base


def test_measurement_noise_is_deterministic_and_bounded():
    cpu = EmbeddedCPU(seed=3)
    features = _tiled_matmul_features(size=64)
    first = cpu.measure(features, number=3)
    second = cpu.measure(features, number=3)
    base = cpu.estimate(features)
    assert first.valid and second.valid
    assert first.mean_time == pytest.approx(second.mean_time)
    assert abs(first.mean_time - base) / base < 0.5


def test_vdla_latency_hiding_reduces_time():
    from repro.topi.schedules import vdla as vdla_sched

    accel = VDLAAccelerator()
    s1, t1 = vdla_sched.schedule_gemm_vdla(64, 64, 64, vthreads=1)
    s2, t2 = vdla_sched.schedule_gemm_vdla(64, 64, 64, vthreads=2)
    f1 = tir.inject_virtual_threads(tir.lower(s1, t1))
    f2 = tir.inject_virtual_threads(tir.lower(s2, t2))
    without = accel.estimate_func(f1, latency_hiding=False)
    with_hiding = accel.estimate_func(f2, latency_hiding=True)
    assert with_hiding <= without
    assert accel.compute_utilization(f2, True) >= accel.compute_utilization(f1, False)


def test_vdla_instruction_trace_contains_all_stages():
    from repro.hardware import build_instruction_trace
    from repro.topi.schedules import vdla as vdla_sched

    s, tensors = vdla_sched.schedule_gemm_vdla(64, 64, 64, vthreads=2)
    func = tir.inject_virtual_threads(tir.lower(s, tensors))
    trace = build_instruction_trace(func)
    stages = {instr.stage for instr in trace}
    assert {"ld", "ex", "st"} <= stages


def test_targets_expose_primitive_support():
    assert cuda().primitive_support["special_memory_scope"]
    assert vdla().primitive_support["latency_hiding"]
    assert not arm_cpu().primitive_support["latency_hiding"]
    assert mali().device_type == "mali"
    with pytest.raises(ValueError):
        create_target("tpu-v9000")
    assert create_target("cuda").name == "cuda"
