"""Efficiency profiles of the simulated vendor libraries and frameworks.

The paper compares TVM against closed-source, hand-optimized libraries
(cuDNN/cuBLAS on the Titan X, TensorFlow Lite kernels on the ARM A53, the ARM
Compute Library on Mali, Caffe2's ultra-low-precision kernels) and against
full frameworks (TensorFlow, TensorFlow-XLA, MXNet).  None of these can be
run here, so each is modelled as a *fixed expert implementation*: the
operator's ideal roofline time on the simulated device divided by an
efficiency factor that captures how well the library handles that operator
class.  The factors encode the qualitative facts reported in the paper:

* cuDNN is extremely good at common convolutions (it is the reference point
  TVM roughly matches on conventional ResNet layers in Figure 15) but poor at
  operators it was not tuned for — depthwise convolutions (new at the time,
  frameworks "implement their own versions"), the DQN's 4x4-stride-2
  convolution, and small-batch corner cases.
* TensorFlow Lite's float CPU kernels are decent for regular convolutions but
  weak for depthwise convolutions on the A53 (Figure 17 shows ~2x headroom).
* The ARM Compute Library on Mali leaves ~1.2-1.6x on the table end-to-end
  (Figure 19).
* Caffe2's ultra-low-precision kernels are single-threaded and not optimized
  for 1x1 stride-2 layers (Figure 18).

These numbers are *inputs* to the reproduction, documented here, not outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["LibraryProfile", "CUDNN_PROFILE", "TFLITE_PROFILE", "ACL_PROFILE",
           "CAFFE2_ULP_PROFILE", "MXNET_KERNEL_PROFILE", "FRAMEWORK_OVERHEADS"]


@dataclass(frozen=True)
class LibraryProfile:
    """Fraction of the device's roofline a library achieves per operator class."""

    name: str
    #: efficiency for conventional conv2d kernels (3x3/7x7, stride 1-2)
    conv2d: float
    #: efficiency for 1x1 convolutions
    conv2d_1x1: float
    #: efficiency for unconventional convolutions (e.g. 4x4 stride 2)
    conv2d_unusual: float
    #: efficiency for depthwise convolutions
    depthwise: float
    #: efficiency for dense / GEMM
    dense: float
    #: efficiency for element-wise / memory-bound operators
    elementwise: float
    #: efficiency for transposed convolutions
    conv2d_transpose: float = 0.35


#: cuDNN v7 + cuBLAS v8 on the Titan X (server GPU).
CUDNN_PROFILE = LibraryProfile(
    name="cuDNN",
    conv2d=0.80,
    conv2d_1x1=0.62,
    conv2d_unusual=0.20,
    depthwise=0.15,          # MXNet/TF ship their own unoptimised kernels
    dense=0.85,              # cuBLAS
    elementwise=0.60,
    conv2d_transpose=0.35,
)

#: MXNet's handcrafted depthwise kernels (Figure 15's "MX Kernel" series).
MXNET_KERNEL_PROFILE = LibraryProfile(
    name="MXNet kernels",
    conv2d=0.75,
    conv2d_1x1=0.60,
    conv2d_unusual=0.20,
    depthwise=0.18,
    dense=0.85,
    elementwise=0.55,
)

#: TensorFlow Lite (commit 7558b085) float kernels on the ARM Cortex A53.
TFLITE_PROFILE = LibraryProfile(
    name="TensorFlow Lite",
    conv2d=0.55,
    conv2d_1x1=0.45,
    conv2d_unusual=0.30,
    depthwise=0.25,
    dense=0.55,
    elementwise=0.50,
)

#: ARM Compute Library v18.03 on the Mali-T860MP4.
ACL_PROFILE = LibraryProfile(
    name="ARM ComputeLib",
    conv2d=0.60,
    conv2d_1x1=0.50,
    conv2d_unusual=0.35,
    depthwise=0.30,
    dense=0.60,
    elementwise=0.55,
)

#: Caffe2 ultra-low-precision kernels (commit 39e07f7): single threaded,
#: tuned for 3x3 stride-1 layers, weak on 1x1 stride-2 layers.
CAFFE2_ULP_PROFILE = LibraryProfile(
    name="Caffe2 ULP",
    conv2d=0.55,
    conv2d_1x1=0.12,
    conv2d_unusual=0.25,
    depthwise=0.25,
    dense=0.50,
    elementwise=0.50,
)

#: Per-operator dispatch overhead (seconds) of each framework's executor:
#: graph interpretation, operator dispatch, memory allocator churn.
FRAMEWORK_OVERHEADS: Dict[str, float] = {
    "tensorflow": 18e-6,
    "tensorflow-xla": 10e-6,
    "mxnet": 12e-6,
    "tflite": 8e-6,
    "arm-compute-lib": 15e-6,
    "caffe2": 8e-6,
    "tvm": 2e-6,
}
