"""Per-operator kernel time estimation on a target.

For the heavy operators (conv2d, depthwise conv2d, dense, transposed conv)
the estimate comes from actually lowering a scheduled tensor-expression
implementation — using the best configuration found by the autotuner when a
tuning database is supplied, or the template's fallback configuration
otherwise — and asking the target's hardware model for its latency.  Light
(injective / reduction) operators are estimated from their memory traffic.

Results are memoised per (workload, target) since networks reuse layer shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import te, tir
from ..autotvm.database import TuningDatabase
from ..autotvm.space import ConfigSpace
from ..autotvm.task import Task
from ..hardware.target import Target
from ..hardware.vdla import VDLAAccelerator
from ..topi import nn as topi_nn
from ..topi.schedules import cpu as cpu_sched
from ..topi.schedules import gpu as gpu_sched
from ..topi.schedules import vdla as vdla_sched
from .ir import Node
from .ops import OP_REGISTRY

__all__ = ["workload_key", "estimate_node_time", "kernel_time", "TimeEstimate",
           "make_task_for_node", "task_name_for_node", "fallback_search",
           "fallback_config_for_node", "clear_timing_cache", "KERNEL_TIME_CACHE"]

KERNEL_TIME_CACHE: Dict[Tuple, "TimeEstimate"] = {}

#: memoised (best_time, best_config_index) of the fallback heuristic
_FALLBACK_CACHE: Dict[Tuple, Tuple[float, int]] = {}


def clear_timing_cache() -> None:
    from ..autotvm.eval_cache import clear_eval_caches

    KERNEL_TIME_CACHE.clear()
    _FALLBACK_CACHE.clear()
    clear_eval_caches()


@dataclass(frozen=True)
class TimeEstimate:
    """A kernel-latency estimate and how it was obtained."""

    time: float
    tuned: bool = False                 #: came from a tuning-history entry
    config_index: Optional[int] = None  #: config used (tuned path only)


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def workload_key(node: Node, target: Target) -> Tuple:
    """Cache / tuning-database key for an operator workload on a target."""
    shapes = tuple(tuple(p.shape) for p in node.inputs)
    attrs = tuple(sorted((k, str(v)) for k, v in node.attrs.items()
                         if k in ("strides", "padding", "pool_size", "alpha")))
    return (node.op, shapes, attrs, target.name, node.dtype)


# ---------------------------------------------------------------------------
# Template construction per operator / target
# ---------------------------------------------------------------------------

def _conv2d_template(target: Target):
    gpu_like = target.device_type in ("gpu", "mali")

    def template(cfg, n, ci, h, w, co, kh, kw, stride, padding, dtype):
        data = te.placeholder((n, ci, h, w), name="data", dtype=dtype)
        kernel = te.placeholder((co, ci, kh, kw), name="kernel", dtype=dtype)
        conv = topi_nn.conv2d_nchw(data, kernel, stride, padding)
        if gpu_like:
            return gpu_sched.conv2d_gpu_template(cfg, data, kernel, conv)
        return cpu_sched.conv2d_cpu_template(cfg, data, kernel, conv)

    return template


def _depthwise_template(target: Target):
    gpu_like = target.device_type in ("gpu", "mali")

    def template(cfg, n, c, h, w, kh, kw, stride, padding, dtype):
        data = te.placeholder((n, c, h, w), name="data", dtype=dtype)
        kernel = te.placeholder((c, 1, kh, kw), name="kernel", dtype=dtype)
        conv = topi_nn.depthwise_conv2d_nchw(data, kernel, stride, padding)
        if gpu_like:
            return gpu_sched.depthwise_conv2d_gpu_template(cfg, data, kernel, conv)
        return cpu_sched.depthwise_conv2d_cpu_template(cfg, data, kernel, conv)

    return template


def _dense_template(target: Target):
    gpu_like = target.device_type in ("gpu", "mali")

    def template(cfg, batch, in_dim, out_dim, dtype):
        data = te.placeholder((batch, in_dim), name="data", dtype=dtype)
        weight = te.placeholder((out_dim, in_dim), name="weight", dtype=dtype)
        out = topi_nn.dense(data, weight)
        if gpu_like:
            return gpu_sched.dense_gpu_template(cfg, data, weight, out)
        return cpu_sched.dense_cpu_template(cfg, data, weight, out)

    return template


def _task_signature(node: Node) -> Optional[Tuple[str, Tuple]]:
    """``(template kind, workload args)`` of a heavy operator node, or None."""
    dtype = node.dtype or "float32"
    if node.op == "conv2d_transpose":
        # A strided transposed convolution is compiled as the equivalent
        # unit-stride convolution over the zero-dilated input.
        (n, ci, h, w) = node.inputs[0].shape
        (_ic, co, kh, kw) = node.inputs[1].shape
        sh, _sw = _pair(node.attrs.get("strides", 1))
        ph, _pw = _pair(node.attrs.get("padding", 0))
        dil_h = h + (h - 1) * (sh - 1)
        dil_w = w + (w - 1) * (sh - 1)
        return "conv2d", (n, ci, dil_h, dil_w, co, kh, kw, 1, kh - 1 - ph, dtype)
    if node.op == "conv2d":
        (n, ci, h, w) = node.inputs[0].shape
        (co, _ci, kh, kw) = node.inputs[1].shape
        sh, _sw = _pair(node.attrs.get("strides", 1))
        ph, _pw = _pair(node.attrs.get("padding", 0))
        return "conv2d", (n, ci, h, w, co, kh, kw, sh, ph, dtype)
    if node.op == "depthwise_conv2d":
        (n, c, h, w) = node.inputs[0].shape
        (_c, _m, kh, kw) = node.inputs[1].shape
        sh, _sw = _pair(node.attrs.get("strides", 1))
        ph, _pw = _pair(node.attrs.get("padding", 0))
        return "depthwise", (n, c, h, w, kh, kw, sh, ph, dtype)
    if node.op == "dense":
        (batch, in_dim) = node.inputs[0].shape
        (out_dim, _in) = node.inputs[1].shape
        return "dense", (batch, in_dim, out_dim, dtype)
    return None


_TEMPLATE_FACTORIES = {
    "conv2d": _conv2d_template,
    "depthwise": _depthwise_template,
    "dense": _dense_template,
}


def task_name_for_node(node: Node) -> Optional[str]:
    """The tuning-task / database name of a heavy operator node, without
    paying for task construction (used for history lookups)."""
    signature = _task_signature(node)
    if signature is None:
        return None
    kind, args = signature
    return f"{kind}_{args}"


def make_task_for_node(node: Node, target: Target) -> Optional[Task]:
    """Create an autotvm task for a heavy operator node, or None."""
    signature = _task_signature(node)
    if signature is None:
        return None
    kind, args = signature
    # ``workload=kind`` normalizes the shared-cache identity: any task that
    # lowers the same (template kind, args, target) — regardless of the
    # task's display name — shares lowering/featurisation cache entries.
    task = Task(f"{kind}_{args}", _TEMPLATE_FACTORIES[kind](target), args, target,
                workload=kind)
    # Lets a process-pool measure worker rebuild this task from plain data
    # (template functions cannot cross a process boundary unpickled).
    task.template_kind = kind
    return task


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------

def _memory_bound_time(node: Node, target: Target, fused: bool = False) -> float:
    """Traffic-based estimate for light operators."""
    params = target.model.params
    elem_bytes = 2 if node.dtype == "float16" else 4
    out_elems = float(np.prod(node.shape))
    in_elems = sum(float(np.prod(p.shape)) for p in node.inputs)
    traffic = (out_elems + in_elems) * elem_bytes
    bandwidth = params.dram_bandwidth
    time = traffic / bandwidth
    spec = OP_REGISTRY[node.op]
    flops = spec.flops([tuple(p.shape) for p in node.inputs], tuple(node.shape),
                       node.attrs)
    time = max(time, flops / params.peak_flops * 4.0)
    if not fused:
        time += params.launch_overhead
    return time


def _vdla_conv_time(node: Node, target: Target, latency_hiding: bool = True) -> float:
    """Estimate a convolution offloaded to the VDLA via its GEMM mapping."""
    (n, ci, h, w) = node.inputs[0].shape
    (co, _ci, kh, kw) = node.inputs[1].shape
    sh, _sw = _pair(node.attrs.get("strides", 1))
    ph, _pw = _pair(node.attrs.get("padding", 0))
    m, n_dim, k = vdla_sched.conv2d_as_gemm_workload(n, ci, h, w, co, kh, sh, ph)
    schedule, tensors = vdla_sched.schedule_gemm_vdla(
        m, n_dim, k, vthreads=2 if latency_hiding else 1)
    func = tir.lower(schedule, tensors, name=f"vdla_conv_{m}x{n_dim}x{k}")
    from ..tir.transforms import inject_virtual_threads

    func = inject_virtual_threads(func)
    model: VDLAAccelerator = target.model  # type: ignore[assignment]
    return model.estimate_func(func, latency_hiding=latency_hiding)


#: operators tuned through schedule templates (everything else is estimated
#: from memory traffic)
_TEMPLATED_OPS = ("conv2d", "depthwise_conv2d", "dense", "conv2d_transpose")


def estimate_node_time(node: Node, target: Target,
                       tuning_db: Optional[TuningDatabase] = None,
                       fused: bool = False,
                       n_fallback_configs: int = 48) -> float:
    """Estimated kernel latency of one operator node on ``target``.

    Thin wrapper over :func:`kernel_time` for callers that only need the
    number.
    """
    return kernel_time(node, target, tuning_db=tuning_db, fused=fused,
                       n_fallback_configs=n_fallback_configs).time


def kernel_time(node: Node, target: Target,
                tuning_db: Optional[TuningDatabase] = None,
                fused: bool = False,
                n_fallback_configs: int = 48) -> TimeEstimate:
    """Kernel latency of one operator node, with provenance.

    ``fused=True`` means the node executes inside a fused kernel anchored by
    another operator, so it contributes no extra kernel launch and its global
    memory round-trip is elided (only its arithmetic is counted).

    ``tuning_db`` may be a :class:`TuningDatabase` or any object with its
    ``best(task_name, target_name)`` interface (e.g.
    :class:`~repro.autotvm.apply_history.ApplyHistoryBest`, which counts the
    lookups).  The history lookup happens before the memoisation check and
    the hit extends the cache key, so tuned and untuned estimates of the
    same workload never collide in the cache.
    """
    base_key = workload_key(node, target) + (fused,)

    entry = None
    if tuning_db is not None and node.op in _TEMPLATED_OPS \
            and not (target.device_type == "vdla" and node.op == "conv2d"):
        task_name = task_name_for_node(node)
        if task_name is not None:
            entry = tuning_db.best(task_name, target.name)
    key = base_key if entry is None else base_key + ("tuned", entry.config_index)
    if key in KERNEL_TIME_CACHE:
        return KERNEL_TIME_CACHE[key]

    spec = OP_REGISTRY[node.op]
    if fused and spec.pattern == "injective":
        flops = spec.flops([tuple(p.shape) for p in node.inputs], tuple(node.shape),
                           node.attrs)
        estimate = TimeEstimate(flops / target.model.params.peak_flops * 2.0)
        KERNEL_TIME_CACHE[key] = estimate
        return estimate

    if target.device_type == "vdla" and node.op in ("conv2d",):
        estimate = TimeEstimate(_vdla_conv_time(node, target))
        KERNEL_TIME_CACHE[key] = estimate
        return estimate

    if node.op not in _TEMPLATED_OPS:
        estimate = TimeEstimate(_memory_bound_time(node, target, fused=fused))
        KERNEL_TIME_CACHE[key] = estimate
        return estimate

    # Pick the configuration: tuned if available, otherwise run the compiler's
    # fallback heuristic (a short model-guided local search over the space).
    if entry is not None:
        task = make_task_for_node(node, target)
        try:
            best_time = target.model.estimate(
                task.features_of(entry.config_index))
        except Exception:
            best_time = float("inf")
        tuned, config_index = True, entry.config_index
    else:
        best_time, config_index = fallback_config_for_node(
            node, target, fused=fused, n_fallback_configs=n_fallback_configs)
        tuned = False
    if not math.isfinite(best_time):
        best_time = _memory_bound_time(node, target, fused=fused)
        tuned, config_index = False, None
    estimate = TimeEstimate(best_time, tuned=tuned, config_index=config_index)
    KERNEL_TIME_CACHE[key] = estimate
    return estimate


def fallback_config_for_node(node: Node, target: Target, fused: bool = False,
                             n_fallback_configs: int = 48) -> Tuple[float, int]:
    """``(best_time, best_config_index)`` of the compiler's untuned fallback
    heuristic for a heavy operator node (memoised, deterministic).

    This is exactly what an untuned build uses for the node, which is what
    lets the tuning session guarantee its recorded configs never regress a
    compilation (see ``TuningOptions.ensure_no_regression``).
    """
    import zlib

    key = workload_key(node, target) + (fused,)
    if key in _FALLBACK_CACHE:
        return _FALLBACK_CACHE[key]
    task = make_task_for_node(node, target)
    if task is None:
        raise ValueError(f"Node {node.name!r} ({node.op}) has no schedule template")
    seed = zlib.crc32(repr(key).encode())
    result = fallback_search(task, target,
                             n_random=max(n_fallback_configs // 2, 8),
                             climb_rounds=2, seed=seed)
    _FALLBACK_CACHE[key] = result
    return result


def fallback_search(task: Task, target: Target, n_random: int = 24,
                    climb_rounds: int = 2, top_k: int = 3,
                    seed: int = 0) -> Tuple[float, int]:
    """Model-guided fallback configuration search (no tuning log available).

    Samples ``n_random`` configurations, then hill-climbs from the best
    ``top_k`` by toggling one knob at a time, scoring every candidate with the
    target's hardware model.  Returns ``(best_time, best_config_index)``.
    This is the deterministic heuristic the compiler uses when the user has
    not run the autotuner; the autotuner (Section 5) explores the same space
    with real measurements and an ML cost model instead.
    """
    import random as _random

    space = task.config_space
    rng = _random.Random(seed)
    scored: Dict[int, float] = {}

    def score_batch(indices) -> None:
        """Featurise (through the shared evaluation cache) and score one
        round of candidates as a single hardware-model batch call."""
        todo = []
        pending = set()
        for index in indices:
            if index not in scored and index not in pending:
                pending.add(index)
                todo.append(index)
        if not todo:
            return
        features = []
        for index in todo:
            try:
                features.append(task.features_of(index))
            except Exception:
                features.append(None)    # scores inf in the batch call
        times = target.model.estimate_batch(features)
        for index, time in zip(todo, times):
            scored[index] = float(time)

    score_batch(c.index for c in space.sample(max(n_random, 1), rng=rng))

    # Knob geometry is memoized on the space; neighbours are mapped to flat
    # indices arithmetically so already-scored ones are skipped before any
    # knob-dict construction or lowering happens.
    dims = space.dims
    for _ in range(max(climb_rounds, 0)):
        seeds = sorted(scored, key=scored.get)[:top_k]
        round_batch = []
        for index in seeds:
            knobs = space.knob_indices(index)
            for pos in range(len(knobs)):
                if dims[pos] <= 1:
                    continue
                for delta in (-1, 1):
                    neighbor = list(knobs)
                    neighbor[pos] = (neighbor[pos] + delta) % dims[pos]
                    round_batch.append(space.flat_index(neighbor))
        score_batch(round_batch)

    best_index = min(scored, key=scored.get)
    return scored[best_index], best_index
