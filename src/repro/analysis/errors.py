"""Typed error taxonomy of the static-analysis layer.

Every check the verifiers perform has a dedicated exception class, all
rooted at :class:`VerifierError`.  An instance always knows *which* check
failed (``check``), *where* it failed (``node`` — a graph node name or a TIR
buffer/loop-var name) and, when raised from inside the pass pipeline, *which
pass* produced the offending IR (``pass_name``).  Callers can therefore
catch the broad classes (:class:`GraphVerifierError`,
:class:`TIRVerifierError`) or pin an exact failure mode in tests.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "VerifierError",
    "GraphVerifierError",
    "DuplicateNodeNameError",
    "TopologicalOrderError",
    "DanglingInputError",
    "UnknownOperatorError",
    "ShapeMismatchError",
    "DtypeMismatchError",
    "FusionLegalityError",
    "LayoutError",
    "MemoryAliasError",
    "StorageSizeError",
    "TIRVerifierError",
    "OutOfBoundsError",
    "UseBeforeDefError",
    "ParallelHazardError",
]


class VerifierError(Exception):
    """Base class of every static-analysis failure.

    Parameters
    ----------
    message:
        Human-readable description of the violation.
    check:
        Stable name of the failing check (e.g. ``"memory_alias"``); defaults
        to the class-level :attr:`check` of the concrete error type.
    node:
        Name of the offending IR object — a graph node, buffer or loop var.
    pass_name:
        Name of the pipeline pass after which the violation was detected,
        when known.
    """

    check: str = "verify"

    def __init__(self, message: str, *, check: Optional[str] = None,
                 node: Optional[str] = None, pass_name: Optional[str] = None):
        self.check = check or type(self).check
        self.node = node
        self.pass_name = pass_name
        super().__init__(self._format(message))

    def _format(self, message: str) -> str:
        where = []
        if self.pass_name:
            where.append(f"after pass {self.pass_name!r}")
        if self.node:
            where.append(f"at {self.node!r}")
        suffix = f" ({', '.join(where)})" if where else ""
        return f"[{self.check}] {message}{suffix}"


class GraphVerifierError(VerifierError):
    """A graph-level IR invariant was violated."""

    check = "graph"


class DuplicateNodeNameError(GraphVerifierError):
    check = "unique_names"


class TopologicalOrderError(GraphVerifierError):
    check = "topological_order"


class DanglingInputError(GraphVerifierError):
    check = "dangling_input"


class UnknownOperatorError(GraphVerifierError):
    check = "known_operator"


class ShapeMismatchError(GraphVerifierError):
    check = "shape_inference"


class DtypeMismatchError(GraphVerifierError):
    check = "dtype_inference"


class FusionLegalityError(GraphVerifierError):
    check = "fusion_legality"


class LayoutError(GraphVerifierError):
    check = "layout_consistency"


class MemoryAliasError(GraphVerifierError):
    check = "memory_alias"


class StorageSizeError(GraphVerifierError):
    check = "storage_size"


class TIRVerifierError(VerifierError):
    """A loop-program (TIR) invariant was violated."""

    check = "tir"


class OutOfBoundsError(TIRVerifierError):
    check = "buffer_bounds"


class UseBeforeDefError(TIRVerifierError):
    check = "def_before_use"


class ParallelHazardError(TIRVerifierError):
    check = "parallel_hazard"
