"""Tests for the process-parallel worker pool (``repro.runtime.procpool``):
shared-memory arenas, the framed dispatch protocol's end-to-end behaviour,
worker death / respawn, bit-identical serving and measurement, and the
no-leaked-``/dev/shm``-segments contract."""

import os
import signal
import time

import numpy as np
import pytest

import repro
from repro.autotvm import LocalMeasurer, ProcessMeasurer, extract_tasks
from repro.autotvm.measure import MeasureInput
from repro.frontend import ModelBuilder
from repro.hardware import cuda
from repro.runtime import Executor, ModuleWorkerPool, ShmArena, leaked_segments
from repro.runtime.artifact import export_module, load_module


def _small_cnn():
    b = ModelBuilder("small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


@pytest.fixture(scope="module")
def module():
    return repro.compile(_small_cnn(), target=cuda())


@pytest.fixture(scope="module")
def bundle(module, tmp_path_factory):
    path = tmp_path_factory.mktemp("procpool") / "small.module"
    export_module(module, path)
    return str(path)


@pytest.fixture(scope="module")
def requests_and_expected(module):
    rng = np.random.default_rng(5)
    inputs = [rng.random((1, 3, 16, 16)).astype("float32") for _ in range(6)]
    solo = Executor(module)
    expected = [solo(x)[0].asnumpy() for x in inputs]
    return inputs, expected


def _wait_for(condition, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------------
# ShmArena
# ---------------------------------------------------------------------------

class TestShmArena:
    def test_pack_reserve_spec_attach_roundtrip(self):
        payload = np.arange(24, dtype="float32").reshape(2, 3, 4)
        arena = ShmArena.create({"x": payload},
                                reserve={"y": ((2, 3, 4), "float32")})
        try:
            assert arena.name in leaked_segments()
            np.testing.assert_array_equal(arena.view("x"), payload)
            assert not arena.view("x").flags.writeable
            np.testing.assert_array_equal(arena.view("y"), np.zeros((2, 3, 4)))

            # Attach from the spec (as a worker would) and write the reserved
            # slot: the creator must see the bytes with no copy in between.
            attached = ShmArena.attach(arena.spec())
            try:
                attached.view("y", writeable=True)[...] = payload * 2
            finally:
                attached.close()
            np.testing.assert_array_equal(arena.read("y"), payload * 2)
        finally:
            arena.unlink()
        assert leaked_segments() == []

    def test_only_the_creator_may_unlink(self):
        arena = ShmArena.create({"x": np.ones(4, dtype="float32")})
        try:
            attached = ShmArena.attach(arena.spec())
            with pytest.raises(ValueError, match="creating process"):
                attached.unlink()
            attached.close()
        finally:
            arena.unlink()

    def test_unlink_is_idempotent(self):
        arena = ShmArena.create({"x": np.ones(4, dtype="float32")})
        arena.unlink()
        arena.unlink()
        assert leaked_segments() == []

    def test_slot_collision_and_unknown_slot(self):
        with pytest.raises(ValueError, match="both packed and reserved"):
            ShmArena.create({"x": np.ones(2, dtype="float32")},
                            reserve={"x": ((2,), "float32")})
        arena = ShmArena.create({"x": np.ones(2, dtype="float32")})
        try:
            with pytest.raises(KeyError, match="Unknown arena slot"):
                arena.view("nope")
        finally:
            arena.unlink()


# ---------------------------------------------------------------------------
# ModuleWorkerPool (direct)
# ---------------------------------------------------------------------------

class TestModuleWorkerPool:
    def test_batch_outputs_bit_identical_to_solo(self, module, bundle,
                                                 requests_and_expected):
        inputs, expected = requests_and_expected
        kind = module.target.device_type
        with ModuleWorkerPool(module, bundle, [f"{kind}:0", f"{kind}:1"]) as pool:
            outcomes = pool.run_batch(0, [{"data": x} for x in inputs[:3]])
            outcomes += pool.run_batch(1, [{"data": x} for x in inputs[3:]])
            for outcome, want in zip(outcomes, expected):
                assert not isinstance(outcome, Exception)
                np.testing.assert_array_equal(outcome[0], want)
            stats = pool.stats()
            assert [s["index"] for s in stats] == [0, 1]
            for s in stats:
                assert s["requests"] == 1 and s["alive"]
                assert s["execute_s"] > 0.0 and s["shm_copy_s"] > 0.0
        assert leaked_segments() == []

    def test_kill9_mid_service_respawns_and_recovers(self, module, bundle,
                                                     requests_and_expected):
        inputs, expected = requests_and_expected
        kind = module.target.device_type
        pool = ModuleWorkerPool(module, bundle, [f"{kind}:0"])
        try:
            first = pool.run_batch(0, [{"data": inputs[0]}])
            np.testing.assert_array_equal(first[0][0], expected[0])
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            # Dispatching into the dead worker must respawn it and retry the
            # same self-contained batch, transparently to the caller.
            again = pool.run_batch(0, [{"data": x} for x in inputs])
            for outcome, want in zip(again, expected):
                np.testing.assert_array_equal(outcome[0], want)
            stats = pool.stats()[0]
            assert stats["respawns"] >= 1
            assert pool.pids()[0] != victim
        finally:
            pool.shutdown()
        assert leaked_segments() == []

    def test_heartbeat_respawns_idle_dead_worker(self, module, bundle):
        kind = module.target.device_type
        pool = ModuleWorkerPool(module, bundle, [f"{kind}:0"],
                                heartbeat_interval=0.2)
        try:
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            _wait_for(lambda: pool.alive()[0] and pool.pids()[0] != victim,
                      timeout=30.0, message="heartbeat respawn")
            assert pool.stats()[0]["respawns"] >= 1
        finally:
            pool.shutdown()
        assert leaked_segments() == []

    def test_abnormal_shutdown_leaves_no_segments(self, module, bundle):
        kind = module.target.device_type
        pool = ModuleWorkerPool(module, bundle, [f"{kind}:0", f"{kind}:1"])
        assert leaked_segments() != []      # the params arena exists
        for pid in pool.pids():
            os.kill(pid, signal.SIGKILL)
        pool.shutdown()
        assert leaked_segments() == []


# ---------------------------------------------------------------------------
# Serving integration
# ---------------------------------------------------------------------------

class TestProcessServing:
    def test_thread_and_process_fingerprints_bit_identical(
            self, module, requests_and_expected):
        inputs, expected = requests_and_expected
        results = {}
        for pool in ("thread", "process"):
            with repro.serve(module, devices=2, max_batch=2, timeout_ms=50,
                             pool=pool) as engine:
                results[pool] = engine.infer_many(
                    [{"data": x} for x in inputs], timeout=60)
                assert engine.stats()["pool"] == pool
        for thread_out, process_out, want in zip(results["thread"],
                                                 results["process"], expected):
            assert thread_out[0].tobytes() == process_out[0].tobytes()
            np.testing.assert_array_equal(process_out[0], want)
        assert leaked_segments() == []

    def test_engine_survives_worker_process_kill(self, module,
                                                 requests_and_expected):
        inputs, expected = requests_and_expected
        with repro.serve(module, devices=2, max_batch=1, timeout_ms=5,
                         pool="process") as engine:
            engine.infer(data=inputs[0], timeout=60)
            os.kill(engine._procpool.pids()[0], signal.SIGKILL)
            results = engine.infer_many([{"data": x} for x in inputs],
                                        timeout=60)
            for got, want in zip(results, expected):
                np.testing.assert_array_equal(got[0], want)
            workers = engine.stats()["process_workers"]
            assert sum(w["respawns"] for w in workers) >= 1
        assert leaked_segments() == []

    def test_process_pool_rejects_tracker(self, module):
        with pytest.raises(ValueError, match="tracker"):
            repro.serve(module, pool="process", tracker=object(),
                        rpc_key="dev")

    def test_unknown_pool_kind_rejected(self, module):
        with pytest.raises(ValueError, match="pool"):
            repro.serve(module, pool="fork")


class _WorkerThreadDeath(BaseException):
    """Deliberately not an Exception: escapes the per-batch error handling."""


class TestThreadWorkerDeath:
    # The dying worker thread re-raises after cleanup (by design); keep
    # pytest's unhandled-thread-exception bookkeeping quiet about it.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_dying_worker_thread_rejects_futures_and_engine_serves_on(
            self, module, requests_and_expected):
        inputs, expected = requests_and_expected
        engine = repro.serve(module, devices=2, max_batch=1, timeout_ms=5)
        try:
            def boom(validated):
                raise _WorkerThreadDeath("executor melted")

            engine._executors[0]._execute = boom
            futures = [engine.submit(data=x) for x in inputs]
            outcomes = []
            for future in futures:
                # The contract under test: every future resolves — with the
                # propagated failure or a result — and never hangs.
                try:
                    outcomes.append(future.result(timeout=30))
                except (RuntimeError, _WorkerThreadDeath):
                    outcomes.append(None)
            rejected = sum(1 for outcome in outcomes if outcome is None)
            assert rejected >= 1
            # Worker 0 is dead; dispatch must route around it from now on.
            _wait_for(lambda: 0 in engine._dead_workers,
                      message="worker 0 marked dead")
            after = engine.infer_many([{"data": x} for x in inputs],
                                      timeout=30)
            for got, want in zip(after, expected):
                np.testing.assert_array_equal(got[0], want)
        finally:
            engine.shutdown()


# ---------------------------------------------------------------------------
# Artifact params override
# ---------------------------------------------------------------------------

def test_load_module_with_externally_mapped_params(module, bundle):
    plain = load_module(bundle)
    override = {name: np.array(value) for name, value in plain.params.items()}
    mapped = load_module(bundle, params=override)
    x = np.random.default_rng(9).random((1, 3, 16, 16)).astype("float32")
    np.testing.assert_array_equal(Executor(mapped)(x)[0].asnumpy(),
                                  Executor(plain)(x)[0].asnumpy())


# ---------------------------------------------------------------------------
# ProcessMeasurer
# ---------------------------------------------------------------------------

def test_process_measurer_bit_identical_to_serial(module):
    import random

    tasks = extract_tasks(_small_cnn(), target=cuda())
    task = tasks[0]
    assert getattr(task, "template_kind", None) is not None
    configs = task.config_space.sample(8, rng=random.Random(0))
    inputs = [MeasureInput(task, config) for config in configs]

    serial = LocalMeasurer(number=3, seed=5).measure(inputs)
    procs = ProcessMeasurer(n_parallel=2, number=3, seed=5).measure(inputs)
    assert len(procs) == len(serial)
    for serial_rec, proc_rec in zip(serial, procs):
        assert proc_rec.input.config.index == serial_rec.input.config.index
        assert proc_rec.mean_time == serial_rec.mean_time   # bit-identical
        assert proc_rec.error == serial_rec.error

    from repro.autotvm.parallel import _MEASURE_POOLS, shutdown_measure_pools
    pool, = _MEASURE_POOLS.values()
    assert sum(s["requests"] for s in pool.stats()) >= 2
    shutdown_measure_pools()
    assert leaked_segments() == []
