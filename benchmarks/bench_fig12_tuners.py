"""Figure 12: automation methods on a ResNet-18 conv2d operator (C7, Titan X).

Compares the ML-based cost model explorer, a blackbox genetic algorithm and
random search, all relative to the cuDNN baseline, as a function of the
number of measurement trials.  The paper shows the ML-based model finding
better configurations much faster than blackbox methods.
"""

import pytest

from common import get_target, print_series
from repro import autotvm
from repro.baselines import CUDNN_PROFILE, VendorLibrary
from repro.graph.op_timing import _conv2d_template
from repro.workloads import RESNET_CONV_WORKLOADS

N_TRIALS = 128


def _evaluate():
    target = get_target("cuda")
    c7 = RESNET_CONV_WORKLOADS[6]
    args = (1, c7.in_channels, c7.height, c7.width, c7.out_channels,
            c7.kernel, c7.kernel, c7.stride, c7.padding, "float32")
    cudnn = VendorLibrary(CUDNN_PROFILE, target).conv2d_time(
        1, c7.in_channels, c7.height, c7.width, c7.out_channels,
        c7.kernel, c7.stride, c7.padding)

    curves = {}
    best = {}
    for label, tuner_cls in (("ML-based model", autotvm.ModelBasedTuner),
                             ("Blackbox genetic", autotvm.GATuner),
                             ("Random search", autotvm.RandomTuner)):
        task = autotvm.Task(f"fig12_{label}", _conv2d_template(target), args, target)
        tuner = tuner_cls(task, seed=42)
        tuner.tune(n_trial=N_TRIALS, batch_size=8)
        curves[label] = tuner.best_history()
        best[label] = tuner.best_time
    return cudnn, curves, best


def test_fig12_ml_vs_blackbox(benchmark):
    cudnn, curves, best = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    rows = []
    for trials in (8, 16, 32, 64, N_TRIALS):
        entry = {}
        for label, history in curves.items():
            idx = min(trials, len(history)) - 1
            entry[label] = cudnn / history[idx]        # speedup vs cuDNN
        rows.append((f"{trials} trials", entry))
    print_series("Figure 12: speedup relative to cuDNN vs number of trials", rows,
                 unit="x vs cuDNN")
    for label, value in best.items():
        benchmark.extra_info[f"{label}_final_speedup_vs_cudnn"] = round(cudnn / value, 3)
    # The ML-guided explorer should end at least as good as random search and
    # in the neighbourhood of cuDNN (paper: surpasses it on this operator).
    assert best["ML-based model"] <= best["Random search"] * 1.15
    assert cudnn / best["ML-based model"] > 0.4
