"""Setup shim so editable installs work without the ``wheel`` package.

The environment used for reproduction has no network access and no
``bdist_wheel`` support; ``pip install -e . --no-use-pep517`` falls back to
``setup.py develop`` via this file.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
