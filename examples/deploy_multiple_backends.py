"""Deploying one model across several back-ends (the paper's portability claim).

Compiles MobileNet for the server GPU, the embedded CPU and the mobile GPU,
exports each build as a self-contained artifact and reloads it the way a
deployment host would (no recompilation), then runs the stateless executor on
the reloaded module.  Latency is compared against the corresponding
vendor-library baseline for each back-end, and the numerical output is
verified to be identical everywhere (the functional semantics do not depend
on the target).

Run:  python examples/deploy_multiple_backends.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.baselines import ACLSim, MXNetSim, TFLiteSim
from repro.frontend import mobilenet
from repro.hardware import arm_cpu, cuda, mali
from repro.runtime import Executor


def main() -> None:
    data = np.random.rand(1, 3, 224, 224).astype("float32")
    baselines = {"cuda": MXNetSim(), "arm_cpu": TFLiteSim(), "mali": ACLSim()}
    targets = {"cuda": cuda(), "arm_cpu": arm_cpu(), "mali": mali()}
    artifact_dir = Path(tempfile.mkdtemp())

    outputs = {}
    print(f"{'target':<10s} {'TVM (ms)':>10s} {'baseline (ms)':>15s} {'speedup':>9s}")
    for name, target in targets.items():
        # Compile once, ship the artifact, load it on the "deployment host".
        compiled = repro.compile(mobilenet(batch=1), target=target)
        artifact = artifact_dir / f"mobilenet-{name}.repro"
        compiled.export(artifact)
        lib = repro.load(artifact)
        assert lib.total_time == compiled.total_time  # no recompilation

        executor = Executor(lib)  # parameters are bound; inputs by name
        outputs[name] = executor(data=data)[0].asnumpy()

        graph_b, _params_b, shapes_b = mobilenet(batch=1)
        baseline = baselines[name].run_estimate(graph_b, shapes_b)
        speedup = baseline.total_time / lib.total_time
        print(f"{name:<10s} {lib.total_time * 1e3:10.3f} "
              f"{baseline.total_time * 1e3:15.3f} {speedup:8.2f}x")

    # The same model produces the same answer on every back-end.
    reference = outputs["cuda"]
    for name, value in outputs.items():
        np.testing.assert_allclose(value, reference, rtol=1e-5, atol=1e-6)
    print("\nNumerical outputs identical across back-ends "
          f"(top-1 class {int(np.argmax(reference))}).")


if __name__ == "__main__":
    main()
