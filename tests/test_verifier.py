"""Tests for the static-analysis layer: graph/TIR verifiers, the mutation
harness, ``compile(verify=True)`` wiring, candidate-schedule rejection in the
measurers, instrument failure paths and the invariant linter."""

import importlib.util
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro
from repro.analysis import (
    MUTATIONS,
    DtypeMismatchError,
    DuplicateNodeNameError,
    OutOfBoundsError,
    ParallelHazardError,
    ShapeMismatchError,
    StorageSizeError,
    TIRVerifierError,
    UseBeforeDefError,
    VerifierError,
    VerifyInstrument,
    run_all,
    run_mutation,
    verify_func,
    verify_graph,
)
from repro.autotvm.measure import LocalMeasurer, MeasureInput
from repro.compiler import PassContext
from repro.compiler.instruments import InstrumentError, PassInstrument
from repro.graph.ir import Graph, Node
from repro.graph.passes import fuse_ops, plan_memory
from repro.te.expr import Add, FloatImm, IntImm, Var
from repro.tir.stmt import (Buffer, BufferLoad, BufferStore, For, ForKind,
                            LoweredFunc)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _small_graph(dtypes=None):
    """conv2d -> bias_add -> relu with a residual add (two consumers)."""
    data = Node("null", "data")
    weight = Node("null", "weight")
    bias = Node("null", "bias")
    conv = Node("conv2d", "conv0", [data, weight],
                {"strides": 1, "padding": 1})
    biased = Node("bias_add", "bias0", [conv, bias])
    act = Node("relu", "relu0", [biased])
    residual = Node("add", "add0", [act, biased])
    graph = Graph([residual])
    graph.infer_shapes({"data": (1, 3, 8, 8), "weight": (8, 3, 3, 3),
                        "bias": (1, 8, 8, 8)}, dtypes=dtypes)
    return graph


def _elemwise_func(extent=16, size=16):
    a = Buffer("a", (size,))
    b = Buffer("b", (size,))
    i = Var("i")
    body = For(i, 0, extent,
               BufferStore(b, [i], Add(BufferLoad(a, [i]), FloatImm(1.0))))
    return LoweredFunc("elemwise", [a, b], body)


# ---------------------------------------------------------------------------
# Graph verifier
# ---------------------------------------------------------------------------

class TestGraphVerifier:
    def test_clean_graph_verifies(self):
        graph = _small_graph()
        verify_graph(graph, groups=fuse_ops(graph),
                     memory_plan=plan_memory(graph))

    def test_shape_corruption_names_check_node_and_pass(self):
        graph = _small_graph()
        node = next(n for n in graph.op_nodes if n.name == "relu0")
        node.shape = (2, 2)
        with pytest.raises(ShapeMismatchError) as err:
            verify_graph(graph, pass_name="bad_pass")
        assert err.value.check == "shape_inference"
        assert "relu0" in str(err.value)
        assert err.value.pass_name == "bad_pass"
        assert "bad_pass" in str(err.value)

    def test_duplicate_names_rejected(self):
        graph = _small_graph()
        next(n for n in graph.op_nodes if n.name == "relu0").name = "bias0"
        with pytest.raises(DuplicateNodeNameError):
            verify_graph(graph)

    def test_undersized_storage_rejected(self):
        graph = _small_graph()
        plan = plan_memory(graph)
        token = plan.storage_of["conv0"]
        plan.token_bytes[token] //= 2
        with pytest.raises(StorageSizeError):
            verify_graph(graph, memory_plan=plan)

    def test_all_errors_subclass_verifier_error(self):
        graph = _small_graph()
        graph.op_nodes[0].shape = (1,)
        with pytest.raises(VerifierError):
            verify_graph(graph)


# ---------------------------------------------------------------------------
# TIR verifier
# ---------------------------------------------------------------------------

class TestTIRVerifier:
    def test_clean_func_verifies(self):
        verify_func(_elemwise_func())

    def test_static_oob_detected(self):
        with pytest.raises(OutOfBoundsError) as err:
            verify_func(_elemwise_func(extent=32, size=16))
        assert err.value.check == "buffer_bounds"

    def test_undefined_loop_var_detected(self):
        a = Buffer("a", (16,))
        b = Buffer("b", (16,))
        i, phantom = Var("i"), Var("phantom")
        body = For(i, 0, 16, BufferStore(b, [phantom], BufferLoad(a, [i])))
        with pytest.raises(UseBeforeDefError):
            verify_func(LoweredFunc("bad", [a, b], body))

    def test_parallel_reduction_hazard_detected(self):
        a = Buffer("a", (16,))
        out = Buffer("out", (1,))
        i = Var("i")
        body = For(i, 0, 16,
                   BufferStore(out, [IntImm(0)],
                               Add(BufferLoad(out, [IntImm(0)]),
                                   BufferLoad(a, [i]))),
                   kind=ForKind.PARALLEL)
        with pytest.raises(ParallelHazardError) as err:
            verify_func(LoweredFunc("reduce", [a, out], body))
        assert err.value.check == "parallel_hazard"


# ---------------------------------------------------------------------------
# Mutation harness: every class caught with the exact typed error
# ---------------------------------------------------------------------------

class TestMutationHarness:
    def test_at_least_eight_classes(self):
        assert len(MUTATIONS) >= 8

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_caught_with_exact_type(self, name):
        outcome = run_mutation(name, seed=0)
        assert outcome.ok, (f"{name}: expected {outcome.expected}, got "
                            f"{outcome.error_type}: {outcome.message}")

    def test_run_all_deterministic_across_seeds(self):
        for seed in (1, 2, 3):
            outcomes = run_all(seed=seed)
            failed = [o.name for o in outcomes if not o.ok]
            assert not failed, f"seed {seed}: verifier missed {failed}"


# ---------------------------------------------------------------------------
# compile(verify=True) wiring
# ---------------------------------------------------------------------------

class TestCompileVerify:
    @pytest.mark.parametrize("opt_level", [0, 2, 3])
    def test_zoo_model_verifies_clean(self, opt_level):
        module = repro.compile("dqn", target="arm_cpu",
                               opt_level=opt_level, verify=True)
        assert module.kernels

    def test_config_key_enables_verification(self):
        with PassContext(opt_level=2, config={"verify": True}):
            repro.compile("dqn", target="arm_cpu")

    def test_corrupting_pass_caught_and_named(self):
        def clobber_names(state, ctx):
            ops = state.graph.op_nodes
            ops[1].name = ops[0].name

        with pytest.raises(DuplicateNodeNameError) as err:
            with PassContext(opt_level=2, extra_passes=[clobber_names]):
                repro.compile("dqn", target="arm_cpu", verify=True)
        assert err.value.pass_name == "clobber_names"

    def test_verify_off_by_default(self):
        def clobber_dtype(state, ctx):
            state.graph.op_nodes[0].dtype = "float16"

        # Without verify the corruption flows through silently; with verify
        # the re-inference disagreement is caught right after the pass.
        with PassContext(opt_level=2, extra_passes=[clobber_dtype]):
            repro.compile("dqn", target="arm_cpu")
        with pytest.raises(DtypeMismatchError):
            with PassContext(opt_level=2, extra_passes=[clobber_dtype]):
                repro.compile("dqn", target="arm_cpu", verify=True)

    def test_instrument_counts_passes(self):
        instrument = VerifyInstrument()
        with PassContext(opt_level=2, instruments=[instrument]):
            repro.compile("dqn", target="arm_cpu")
        assert instrument.passes_verified > 0


# ---------------------------------------------------------------------------
# Candidate-schedule verification in the measurers
# ---------------------------------------------------------------------------

class _BrokenTask:
    """Duck-typed task whose every schedule lowers to an OOB program."""

    name = "broken_task"

    def __init__(self):
        self.target = SimpleNamespace(model=None)

    def lower(self, config):
        return _elemwise_func(extent=32, size=16)


class TestMeasurerVerify:
    def test_illegal_schedule_rejected_as_typed_error(self):
        measurer = LocalMeasurer(verify=True)
        inp = MeasureInput(task=_BrokenTask(),
                           config=SimpleNamespace(index=7))
        with pytest.raises(TIRVerifierError):
            measurer._verify_one(inp)
        assert measurer.num_rejected == 1

    def test_rejection_memoized_per_config(self):
        measurer = LocalMeasurer(verify=True)
        task = _BrokenTask()
        inp = MeasureInput(task=task, config=SimpleNamespace(index=7))
        for _ in range(3):
            with pytest.raises(TIRVerifierError):
                measurer._verify_one(inp)
        assert measurer.num_rejected == 3
        assert len(measurer._verify_cache) == 1

    def test_rejected_candidate_becomes_errored_measurement(self):
        measurer = LocalMeasurer(verify=True)
        inp = MeasureInput(task=_BrokenTask(),
                           config=SimpleNamespace(index=3))
        record = measurer._measure_one(inp)
        assert record.mean_time == float("inf")
        assert record.error and "buffer_bounds" in record.error

    def test_verify_off_skips_the_check(self):
        measurer = LocalMeasurer()
        assert not measurer.verify
        assert measurer.num_rejected == 0


# ---------------------------------------------------------------------------
# Instrument failure paths (pass manager + PassContext stack)
# ---------------------------------------------------------------------------

class _CrashingInstrument(PassInstrument):
    name = "crasher"

    def __init__(self, hook):
        self._hook = hook

    def run_before_pass(self, pass_info, state):
        if self._hook == "run_before_pass":
            raise ValueError("instrument bug")

    def run_after_pass(self, pass_info, state, seconds):
        if self._hook == "run_after_pass":
            raise ValueError("instrument bug")


class TestInstrumentFailurePaths:
    @pytest.mark.parametrize("hook", ["run_before_pass", "run_after_pass"])
    def test_crash_wrapped_as_instrument_error(self, hook):
        with pytest.raises(InstrumentError) as err:
            with PassContext(opt_level=2,
                             instruments=[_CrashingInstrument(hook)]):
                repro.compile("dqn", target="arm_cpu")
        assert err.value.instrument_name == "crasher"
        assert err.value.hook == hook
        assert err.value.pass_name  # names the surrounding pass
        assert isinstance(err.value.__cause__, ValueError)

    def test_verifier_report_not_wrapped(self):
        class Reporter(PassInstrument):
            name = "reporter"

            def run_after_pass(self, pass_info, state, seconds):
                raise DuplicateNodeNameError("x", pass_name=pass_info.name)

        with pytest.raises(DuplicateNodeNameError):
            with PassContext(opt_level=2, instruments=[Reporter()]):
                repro.compile("dqn", target="arm_cpu")

    def test_enter_failure_leaves_stack_consistent(self):
        entered_exits = []

        class GoodInstrument(PassInstrument):
            def exit_pass_ctx(self):
                entered_exits.append("good")

        class BadEnter(PassInstrument):
            def enter_pass_ctx(self):
                raise RuntimeError("enter bug")

        depth = len(PassContext._stack())
        with pytest.raises(RuntimeError, match="enter bug"):
            with PassContext(instruments=[GoodInstrument(), BadEnter()]):
                pytest.fail("body must not run")
        assert len(PassContext._stack()) == depth
        # the instrument that did enter was unwound
        assert entered_exits == ["good"]

    def test_exit_failure_still_pops_stack(self):
        class BadExit(PassInstrument):
            def exit_pass_ctx(self):
                raise RuntimeError("exit bug")

        depth = len(PassContext._stack())
        with pytest.raises(RuntimeError, match="exit bug"):
            with PassContext(instruments=[BadExit()]):
                pass
        assert len(PassContext._stack()) == depth
        # a later compilation on this thread sees a clean default context
        assert PassContext.current().opt_level == 2


# ---------------------------------------------------------------------------
# Dtype-aware memory planning (low-precision regression)
# ---------------------------------------------------------------------------

class TestLowPrecisionPlanning:
    def test_fp16_halves_planned_bytes_and_keeps_reuse_ratio(self):
        fp32 = plan_memory(_small_graph())
        half_dtypes = {"data": "float16", "weight": "float16",
                       "bias": "float16"}
        fp16 = plan_memory(_small_graph(dtypes=half_dtypes))
        assert fp16.planned_bytes * 2 == fp32.planned_bytes
        assert fp16.naive_bytes * 2 == fp32.naive_bytes
        assert fp16.reuse_ratio == pytest.approx(fp32.reuse_ratio)
        assert fp16.reuse_ratio > 1.0  # planning actually reuses storage

    def test_int8_quarter_sized_tokens(self):
        int8_dtypes = {"data": "int8", "weight": "int8", "bias": "int8"}
        int8 = plan_memory(_small_graph(dtypes=int8_dtypes))
        fp32 = plan_memory(_small_graph())
        assert int8.planned_bytes * 4 == fp32.planned_bytes

    def test_legacy_uniform_element_size_override(self):
        half_dtypes = {"data": "float16", "weight": "float16",
                       "bias": "float16"}
        forced = plan_memory(_small_graph(dtypes=half_dtypes), dtype_bytes=4)
        fp32 = plan_memory(_small_graph())
        assert forced.planned_bytes == fp32.planned_bytes

    def test_verifier_audits_plan_with_matching_sizes(self):
        half_dtypes = {"data": "float16", "weight": "float16",
                       "bias": "float16"}
        graph = _small_graph(dtypes=half_dtypes)
        verify_graph(graph, memory_plan=plan_memory(graph))
        # auditing the fp16 plan as if elements were 4 bytes must fail
        with pytest.raises(StorageSizeError):
            verify_graph(graph, memory_plan=plan_memory(graph),
                         dtype_bytes=4)


# ---------------------------------------------------------------------------
# Invariant linter
# ---------------------------------------------------------------------------

def _load_linter():
    spec = importlib.util.spec_from_file_location(
        "lint_invariants", REPO_ROOT / "tools" / "lint_invariants.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module  # dataclasses resolve annotations here
    spec.loader.exec_module(module)
    return module


class TestLintInvariants:
    def test_source_tree_is_clean(self):
        linter = _load_linter()
        violations = linter.lint_tree([REPO_ROOT / "src" / "repro"])
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_rules_fire_on_violations(self, tmp_path):
        linter = _load_linter()
        bad = tmp_path / "runtime" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "import threading, time\n"
            "try:\n    pass\nexcept:\n    pass\n"
            "t = threading.Thread(target=print)\n"
            "def poll():\n"
            "    while True:\n"
            "        time.sleep(1)\n")
        rules = {v.rule for v in linter.lint_file(bad)}
        assert rules == {"bare-except", "implicit-daemon",
                         "unbounded-sleep-poll"}

    def test_exiting_poll_loop_not_flagged(self, tmp_path):
        linter = _load_linter()
        ok = tmp_path / "runtime" / "ok.py"
        ok.parent.mkdir()
        ok.write_text(
            "import time\n"
            "def wait(evt):\n"
            "    while True:\n"
            "        if evt.is_set():\n"
            "            break\n"
            "        time.sleep(0.1)\n")
        assert linter.lint_file(ok) == []
