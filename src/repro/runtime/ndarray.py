"""NDArray and device context abstractions (the ``tvm.nd`` API of Section 2)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Context", "NDArray", "array", "empty", "cpu", "gpu", "mali", "vdla"]


class Context:
    """A device context: device type + index."""

    def __init__(self, device_type: str, device_id: int = 0):
        self.device_type = device_type
        self.device_id = device_id

    def __repr__(self) -> str:
        return f"{self.device_type}({self.device_id})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Context) and other.device_type == self.device_type
                and other.device_id == self.device_id)

    def __hash__(self) -> int:
        return hash((self.device_type, self.device_id))


def cpu(device_id: int = 0) -> Context:
    return Context("cpu", device_id)


def gpu(device_id: int = 0) -> Context:
    return Context("gpu", device_id)


def mali(device_id: int = 0) -> Context:
    return Context("mali", device_id)


def vdla(device_id: int = 0) -> Context:
    return Context("vdla", device_id)


class NDArray:
    """A device-resident tensor (backed by NumPy in this reproduction)."""

    def __init__(self, data: np.ndarray, ctx: Optional[Context] = None):
        self._data = np.asarray(data)
        self.ctx = ctx or cpu()

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._data.shape)

    @property
    def dtype(self) -> str:
        return str(self._data.dtype)

    def asnumpy(self) -> np.ndarray:
        return np.array(self._data)

    def copyfrom(self, source: Union["NDArray", np.ndarray]) -> "NDArray":
        array_data = source.asnumpy() if isinstance(source, NDArray) else np.asarray(source)
        if array_data.shape != self._data.shape:
            raise ValueError(f"Shape mismatch: {array_data.shape} vs {self._data.shape}")
        self._data[...] = array_data
        return self

    def copyto(self, target: "NDArray") -> "NDArray":
        return target.copyfrom(self)

    def __repr__(self) -> str:
        return f"NDArray(shape={self.shape}, dtype={self.dtype}, ctx={self.ctx})"


def array(data: np.ndarray, ctx: Optional[Context] = None) -> NDArray:
    """Create an NDArray on a device from host data."""
    return NDArray(np.array(data), ctx)


def empty(shape: Sequence[int], dtype: str = "float32",
          ctx: Optional[Context] = None) -> NDArray:
    """Allocate an uninitialised NDArray (``tvm.nd.empty`` in the paper)."""
    return NDArray(np.zeros(tuple(shape), dtype=dtype), ctx)
