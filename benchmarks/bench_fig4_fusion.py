"""Figure 4: impact of operator fusion.

Relative speedup of fused vs non-fused execution for conv+bn+relu,
depthwise-conv+bn+relu, and RNN/LSTM cells on the server GPU.  The paper
reports 1.2x-2.0x speedups from removing intermediate-result round trips.
"""

import pytest

import repro
from common import emit_summary, get_target, print_series
from repro.frontend.builder import ModelBuilder


def _workloads():
    specs = []

    def conv_bn_relu():
        b = ModelBuilder("fig4_conv", seed=0)
        data = b.input("data", (1, 128, 28, 28))
        net = b.relu(b.batch_norm(b.conv2d(data, 256, 1, 1, 0, name="conv")))
        return b.finalize(net)

    def depthwise_bn_relu():
        b = ModelBuilder("fig4_dw", seed=0)
        data = b.input("data", (1, 512, 14, 14))
        net = b.relu(b.batch_norm(b.depthwise_conv2d(data, 3, 1, 1, name="dw")))
        return b.finalize(net)

    def rnn_cell(hidden=128):
        b = ModelBuilder("fig4_rnn", seed=0)
        x = b.input("x", (1, hidden))
        h = b.input("h", (1, hidden))
        out = b.tanh(b.add(b.dense(x, hidden), b.dense(h, hidden)))
        return b.finalize(out), {"x": (1, hidden), "h": (1, hidden)}

    def lstm_cell(hidden=128):
        b = ModelBuilder("fig4_lstm", seed=0)
        x = b.input("x", (1, hidden))
        h = b.input("h", (1, hidden))
        c = b.input("c", (1, hidden))
        h2, _c2 = b.lstm_cell(x, h, c, hidden)
        return b.finalize(h2), {"x": (1, hidden), "h": (1, hidden), "c": (1, hidden)}

    specs.append(("conv+bn+relu", conv_bn_relu(), {"data": (1, 128, 28, 28)}))
    specs.append(("dwconv+bn+relu", depthwise_bn_relu(), {"data": (1, 512, 14, 14)}))
    (rnn_graph, rnn_shapes) = rnn_cell()
    specs.append(("rnn cell", rnn_graph, rnn_shapes))
    (lstm_graph, lstm_shapes) = lstm_cell()
    specs.append(("lstm cell", lstm_graph, lstm_shapes))
    return specs


def _evaluate():
    target = get_target("cuda")
    rows = []
    for name, (graph, params), shapes in _workloads():
        fused = repro.compile(graph, target=target, params=params,
                              input_shapes=shapes)
        # The "TVM w/o graph opt" ablation: disable the fusion pass by name
        # instead of the legacy magic opt_level=0.
        with repro.PassContext(disabled_passes=["fuse_ops"]):
            unfused = repro.compile(graph, target=target, params=params,
                                    input_shapes=shapes)
        rows.append((name, {
            "w/o fusion (ms)": unfused.total_time * 1e3,
            "w/ fusion (ms)": fused.total_time * 1e3,
            "speedup": unfused.total_time / fused.total_time,
        }))
    return rows


def test_fig4_operator_fusion(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 4: fused vs non-fused relative speedup", rows, unit="see col")
    emit_summary("fig4_fusion", {
        "fusion_speedup": {name: round(entry["speedup"], 3)
                           for name, entry in rows}})
    for name, entry in rows:
        benchmark.extra_info[f"{name}_speedup"] = round(entry["speedup"], 2)
        # Fusion must help, and in the paper's 1.2x-2x range (loosely checked).
        assert entry["speedup"] > 1.05, f"fusion did not help for {name}"
        assert entry["speedup"] < 5.0
