"""Framed JSON message protocol of the tuning service.

Same framing discipline as the process-pool pipe protocol
(:mod:`repro.runtime.procpool.protocol`), carried over a TCP socket instead
of a ``multiprocessing`` pipe:

``[4s magic "RTS1"][u8 message type][u32 payload length][payload]``

The payload is UTF-8 JSON encoded through the artifact codec
(:func:`repro.runtime.artifact` ``_encode_attr``/``_decode_attr``) so
tuple-valued fields — workload args, config values — survive the trip
exactly.  Python's ``json`` round-trips ``inf`` (as ``Infinity``) and float
``repr`` is shortest-exact, so measured times arrive bit-identical, which
the service's dedup guarantee depends on.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Tuple

__all__ = ["MSG", "ServiceProtocolError", "send_frame", "recv_frame"]


def _codec():
    # Imported lazily: repro.runtime.artifact itself imports the compiler
    # package (and through it this one), so a module-level import here would
    # turn any import that *starts* at runtime.artifact — e.g. a procpool
    # worker booting from an exported artifact — into a circular-import crash.
    from ...runtime.artifact import _decode_attr, _encode_attr
    return _encode_attr, _decode_attr

_MAGIC = b"RTS1"
_HEADER = struct.Struct("!4sBI")

#: a frame carries log entries / model specs, never tensors — cap it
_MAX_PAYLOAD = 32 * 1024 * 1024


class MSG:
    """Message types (u8 on the wire)."""

    HELLO = 1      #: client -> server: introduce (pid)
    WELCOME = 2    #: server -> client: accepted (server pid, entry count)
    LOOKUP = 3     #: client -> server: were these (task, target, config) measured?
    FOUND = 4      #: server -> client: per-key hit (time/error) or null
    PUSH = 5       #: client -> server: raw trial measurements just made
    RECORD = 6     #: client -> server: a session's floored best entry
    ACK = 7        #: server -> client: push/record accepted (new-entry count)
    BEST = 8       #: client -> server: best entry for (task, target)?
    WARM = 9       #: client -> server: transfer entries for an operator
    ENTRIES = 10   #: server -> client: log entries (BEST/WARM reply)
    MODEL = 11     #: client -> server: pretrained cost model for an operator?
    MODEL_SPEC = 12  #: server -> client: serialized model or null
    STATS = 13     #: client -> server: service counters?
    STATS_REPLY = 14  #: server -> client: the counters
    SHUTDOWN = 15  #: client -> server: stop the service
    BYE = 16       #: server -> client: acknowledging shutdown
    ERROR = 17     #: server -> client: request failed (message)

    _NAMES = {1: "HELLO", 2: "WELCOME", 3: "LOOKUP", 4: "FOUND", 5: "PUSH",
              6: "RECORD", 7: "ACK", 8: "BEST", 9: "WARM", 10: "ENTRIES",
              11: "MODEL", 12: "MODEL_SPEC", 13: "STATS", 14: "STATS_REPLY",
              15: "SHUTDOWN", 16: "BYE", 17: "ERROR"}

    @classmethod
    def name(cls, kind: int) -> str:
        return cls._NAMES.get(kind, f"?{kind}")


class ServiceProtocolError(RuntimeError):
    """A malformed, truncated or oversized frame arrived on a connection."""


def send_frame(sock: socket.socket, kind: int, payload: Dict) -> None:
    """Send one framed message (header + JSON payload)."""
    _encode_attr, _ = _codec()
    body = json.dumps({key: _encode_attr(value)
                       for key, value in payload.items()}).encode("utf-8")
    if len(body) > _MAX_PAYLOAD:
        raise ServiceProtocolError(
            f"Refusing to send a {len(body)}-byte {MSG.name(kind)} frame "
            f"(max {_MAX_PAYLOAD})")
    sock.sendall(_HEADER.pack(_MAGIC, kind, len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"Connection closed mid-frame ({count - remaining}/{count} "
                f"bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, Dict]:
    """Receive one framed message (blocking); ``(kind, payload)``."""
    header = _recv_exact(sock, _HEADER.size)
    magic, kind, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise ServiceProtocolError(
            f"Bad frame magic {magic!r} (expected {_MAGIC!r})")
    if length > _MAX_PAYLOAD:
        raise ServiceProtocolError(
            f"Oversized {MSG.name(kind)} frame: {length} bytes")
    body = _recv_exact(sock, length)
    try:
        raw = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(
            f"Undecodable {MSG.name(kind)} payload: {exc}") from exc
    if not isinstance(raw, dict):
        raise ServiceProtocolError(f"{MSG.name(kind)} payload is not an object")
    _, _decode_attr = _codec()
    return kind, {key: _decode_attr(value) for key, value in raw.items()}
