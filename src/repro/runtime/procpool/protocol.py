"""Framed, pickle-free message protocol between the pool and its workers.

Every message is one raw byte frame on a ``multiprocessing`` pipe
(``send_bytes``/``recv_bytes`` — the object-pickling layer is never used):

``[4s magic "RPP1"][u8 message type][u32 payload length][payload]``

The payload is UTF-8 JSON encoded through the PR 4 artifact codec
(:func:`repro.runtime.artifact` ``_encode_attr``/``_decode_attr``), so
tuple-valued fields — e.g. tuning-task workload args, whose ``repr`` seeds
deterministic fallback configs — survive the trip exactly.  Tensors never
appear in a frame: they travel through :class:`~.shm.ShmArena` segments and
frames carry only the arena spec (segment name + slot table).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Tuple

from ..artifact import _decode_attr, _encode_attr

__all__ = ["MSG", "ProtocolError", "send_msg", "recv_msg",
           "encode_value", "decode_value"]

_MAGIC = b"RPP1"
_HEADER = struct.Struct("!4sBI")

#: refuse absurd frames (tensor data must go through shm, not the pipe)
_MAX_PAYLOAD = 32 * 1024 * 1024


class MSG:
    """Message types (u8 on the wire)."""

    HELLO = 1       #: worker -> pool: boot complete (pid, boot timing)
    PING = 2        #: pool -> worker: heartbeat probe
    PONG = 3        #: worker -> pool: heartbeat reply
    EXEC = 4        #: pool -> worker: execute a batch (arena spec + layout)
    RESULT = 5      #: worker -> pool: batch done (per-request status, timings)
    MEASURE = 6     #: pool -> worker: measure tuning configs (task def inline)
    MEASURED = 7    #: worker -> pool: measured times (floats, no features)
    SHUTDOWN = 8    #: pool -> worker: exit cleanly
    BYE = 9         #: worker -> pool: acknowledging shutdown
    ERROR = 10      #: worker -> pool: request failed (message + traceback)

    _NAMES = {1: "HELLO", 2: "PING", 3: "PONG", 4: "EXEC", 5: "RESULT",
              6: "MEASURE", 7: "MEASURED", 8: "SHUTDOWN", 9: "BYE",
              10: "ERROR"}

    @classmethod
    def name(cls, kind: int) -> str:
        return cls._NAMES.get(kind, f"?{kind}")


class ProtocolError(RuntimeError):
    """A malformed or oversized frame arrived on a pool connection."""


def encode_value(value):
    """Artifact-codec encode (tuples survive as ``{"py/tuple": [...]}``)."""
    return _encode_attr(value)


def decode_value(value):
    return _decode_attr(value)


def send_msg(conn, kind: int, payload: Dict) -> None:
    """Send one framed message (header + JSON payload, no pickling)."""
    body = json.dumps({key: _encode_attr(value)
                       for key, value in payload.items()}).encode("utf-8")
    if len(body) > _MAX_PAYLOAD:
        raise ProtocolError(
            f"Refusing to send a {len(body)}-byte {MSG.name(kind)} frame "
            f"(max {_MAX_PAYLOAD}); tensor data must travel through shm "
            f"arenas, not the pipe")
    conn.send_bytes(_HEADER.pack(_MAGIC, kind, len(body)) + body)


def recv_msg(conn) -> Tuple[int, Dict]:
    """Receive one framed message (blocking); ``(kind, payload)``."""
    frame = conn.recv_bytes()
    if len(frame) < _HEADER.size:
        raise ProtocolError(f"Short frame: {len(frame)} bytes")
    magic, kind, length = _HEADER.unpack_from(frame)
    if magic != _MAGIC:
        raise ProtocolError(f"Bad frame magic {magic!r} (expected {_MAGIC!r})")
    if length > _MAX_PAYLOAD:
        raise ProtocolError(f"Oversized {MSG.name(kind)} frame: {length} bytes")
    body = frame[_HEADER.size:]
    if len(body) != length:
        raise ProtocolError(f"Frame length mismatch: header says {length}, "
                            f"got {len(body)}")
    try:
        raw = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"Undecodable {MSG.name(kind)} payload: {exc}") \
            from exc
    if not isinstance(raw, dict):
        raise ProtocolError(f"{MSG.name(kind)} payload is not an object")
    return kind, {key: _decode_attr(value) for key, value in raw.items()}
