"""Figure 6 (ablation): schedule primitives used by each back-end.

Checks that the schedules the per-backend templates actually generate use the
primitives the paper's table lists: Halide-style loop transformations
everywhere, special memory scopes and thread binding on the GPU,
tensorization and latency hiding on the accelerator.
"""

import pytest

from common import emit_summary, get_target
from repro import te, tir
from repro.autotvm.space import ConfigSpace
from repro.hardware import SCHEDULE_PRIMITIVE_SUPPORT
from repro.topi import nn
from repro.topi.schedules import cpu as cpu_sched
from repro.topi.schedules import gpu as gpu_sched
from repro.topi.schedules import vdla as vdla_sched


def _gpu_features():
    A = te.placeholder((256, 256), name="A")
    B = te.placeholder((256, 256), name="B")
    C = nn.matmul(A, B)
    s = gpu_sched.schedule_matmul_gpu(A, B, C)
    return tir.extract_features(tir.lower(s, [A, B, C]))


def _cpu_features():
    data = te.placeholder((1, 32, 28, 28), name="data")
    kernel = te.placeholder((32, 32, 3, 3), name="kernel")
    conv = nn.conv2d_nchw(data, kernel, 1, 1)
    cfg = ConfigSpace()
    # Pin a representative configuration: 4-way multicore split, 4-wide SIMD.
    cfg.define_split("tile_f", 32, 2, candidate_sizes=[[4, 8]])
    cfg.define_split("tile_y", 28, 2, candidate_sizes=[[7, 4]])
    cfg.define_split("tile_x", 28, 2, candidate_sizes=[[7, 4]])
    cfg.define_split("tile_rc", 32, 2, candidate_sizes=[[8, 4]])
    s, tensors = cpu_sched.conv2d_cpu_template(cfg, data, kernel, conv)
    return tir.extract_features(tir.lower(s, tensors))


def _vdla_features():
    s, tensors = vdla_sched.schedule_gemm_vdla(64, 64, 64, vthreads=2)
    func = tir.lower(s, tensors)
    func = tir.inject_virtual_threads(func)
    return tir.extract_features(func)


def test_fig6_schedule_primitive_usage(benchmark):
    gpu_feat, cpu_feat, vdla_feat = benchmark.pedantic(
        lambda: (_gpu_features(), _cpu_features(), _vdla_features()),
        rounds=1, iterations=1)
    print("\n=== Figure 6: schedule primitives per back-end ===")
    print(f"{'primitive':28s} {'CPU':>6s} {'GPU':>6s} {'Accel':>6s}")
    usage = {
        "loop transformations": (True, True, True),
        "thread binding": (cpu_feat.parallel_extent > 1, gpu_feat.num_threads > 1,
                           vdla_feat.vthread_extent > 1 or vdla_feat.dep_token_count > 0),
        "special memory scope": (False, gpu_feat.bytes_in_scope("shared") > 0,
                                 vdla_feat.bytes_in_scope("acc_buffer") > 0
                                 or vdla_feat.bytes_in_scope("inp_buffer") > 0),
        "tensorization": (False, False, vdla_feat.intrinsic_calls > 0),
        "latency hiding": (False, False, vdla_feat.dep_token_count > 0),
    }
    for primitive, (on_cpu, on_gpu, on_accel) in usage.items():
        print(f"{primitive:28s} {str(bool(on_cpu)):>6s} {str(bool(on_gpu)):>6s} "
              f"{str(bool(on_accel)):>6s}")
    emit_summary("fig6_primitives", {
        "usage": {primitive: {"cpu": bool(on_cpu), "gpu": bool(on_gpu),
                              "accel": bool(on_accel)}
                  for primitive, (on_cpu, on_gpu, on_accel) in usage.items()}})
    # Cross-check against the capability table exposed by the targets.
    assert SCHEDULE_PRIMITIVE_SUPPORT["gpu"]["special_memory_scope"]
    assert SCHEDULE_PRIMITIVE_SUPPORT["accel"]["latency_hiding"]
    assert not SCHEDULE_PRIMITIVE_SUPPORT["cpu"]["special_memory_scope"]
    # And against what the generated schedules actually do.
    assert gpu_feat.num_threads > 1 and gpu_feat.bytes_in_scope("shared") > 0
    assert cpu_feat.parallel_extent > 1 and cpu_feat.vector_lanes > 1
    assert vdla_feat.intrinsic_calls > 0 and vdla_feat.dep_token_count > 0
