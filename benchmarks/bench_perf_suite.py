"""Repo-performance benchmark suite (tracked across PRs).

Unlike the ``bench_fig*`` modules — which regenerate the *paper's* figures —
this suite times the **reproduction itself**: the compile path and the
candidate-evaluation loop that every tuning session hammers (lower ->
featurise -> score, paper §5.2–5.3).  It writes ``BENCH_perf.json`` next to
this file so the perf trajectory of the repo is machine-readable per commit.

Measured:

* ``repro.compile(resnet-18)`` cold (empty caches) and warm (memoised).
* A ``repro.autotune`` ModelBasedTuner session on resnet-18 (64 trials per
  task by default), plus a determinism fingerprint — the per-task best
  config indices and a checksum of the trial curves — so speedups can be
  checked to be *behaviour-preserving* under a fixed seed.
* Shared evaluation-cache hit rates (see ``repro.autotvm.eval_cache``).

Usage::

    python benchmarks/bench_perf_suite.py              # full suite (64 trials)
    python benchmarks/bench_perf_suite.py --smoke      # CI-sized, with budget
    python benchmarks/bench_perf_suite.py --trials 16 --tasks 4
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import repro
from repro.autotvm import TuningOptions, eval_cache_stats
from repro.autotvm.session import (_extract_task_nodes, _normalise_model,
                                   _run_session)
from repro.graph import clear_timing_cache

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_perf.json"


def time_compile(model: str, target: str) -> dict:
    """Cold and warm wall-clock of ``repro.compile``."""
    clear_timing_cache()
    start = time.perf_counter()
    repro.compile(model, target=target)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    repro.compile(model, target=target)
    warm = time.perf_counter() - start
    return {"cold_s": cold, "warm_s": warm}


def time_tuning_session(model: str, target: str, trials: int,
                        max_tasks: int | None, seed: int = 0) -> dict:
    """Wall-clock and determinism fingerprint of a ModelBasedTuner session."""
    clear_timing_cache()
    graph, resolved = _normalise_model(model, target, None, None)
    pairs = _extract_task_nodes(graph, resolved)
    if max_tasks is not None:
        pairs = pairs[:max_tasks]

    # The real repro.autotune session flow (shared database -> transfer-
    # learning warm starts, fallback-floor validation), so the determinism
    # fingerprint matches what users of autotune() get.
    options = TuningOptions(trials=trials, tuner="model", seed=seed)
    start = time.perf_counter()
    report = _run_session(pairs, options, None, resolved.name)
    elapsed = time.perf_counter() - start

    best = {r.task_name: r.best_config.index for r in report.results}
    curves = hashlib.sha256()
    for result in report.results:
        curves.update(result.task_name.encode())
        curves.update(repr([f"{v:.12e}" for v in result.curve]).encode())
    return {
        "elapsed_s": elapsed,
        "tasks": len(report.results),
        "trials_per_task": trials,
        "total_trials": report.total_trials,
        "seconds_per_trial": elapsed / max(report.total_trials, 1),
        "best_config_indices": best,
        "curve_sha256": curves.hexdigest(),
        "eval_cache": eval_cache_stats(),
    }


def run_suite(model: str = "resnet-18", target: str = "gpu", trials: int = 64,
              max_tasks: int | None = None, seed: int = 0) -> dict:
    results = {
        "suite": "bench_perf_suite",
        "model": model,
        "target": target,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    print(f"[perf] compile {model} ({target}) cold/warm ...", flush=True)
    results["compile"] = time_compile(model, target)
    print(f"[perf]   cold {results['compile']['cold_s']:.2f}s, "
          f"warm {results['compile']['warm_s']:.3f}s", flush=True)

    task_note = f"{max_tasks} tasks" if max_tasks else "all tasks"
    print(f"[perf] autotune {model}: {trials} trials x {task_note} ...",
          flush=True)
    results["tuning_session"] = time_tuning_session(model, target, trials,
                                                    max_tasks, seed=seed)
    session = results["tuning_session"]
    # Surface the shared-cache counters (with derived hit rates) as a
    # top-level section so per-commit dashboards need not dig into the
    # session record.
    results["eval_cache"] = {
        name: {**counters,
               "hit_rate": counters["hits"] / max(counters["hits"]
                                                  + counters["misses"], 1)}
        for name, counters in session["eval_cache"].items()}
    hit_rate = results["eval_cache"]["features"]["hit_rate"]
    print(f"[perf]   {session['elapsed_s']:.1f}s for "
          f"{session['total_trials']} trials "
          f"({session['seconds_per_trial']*1000:.0f} ms/trial, "
          f"feature-cache hit rate {hit_rate:.0%})", flush=True)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="resnet-18")
    parser.add_argument("--target", default="gpu")
    parser.add_argument("--trials", type=int, default=64,
                        help="measurement trials per task (default 64)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="limit the number of tuned tasks")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None,
                        help=f"JSON output path (default {DEFAULT_OUTPUT}; "
                             "--smoke defaults to BENCH_perf_smoke.json so "
                             "it never clobbers the tracked full-run record)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 8 trials x 3 tasks, enforced "
                             "wall-clock budget")
    parser.add_argument("--budget", type=float, default=None,
                        help="fail if the tuning session exceeds this many "
                             "seconds (default 120 with --smoke)")
    args = parser.parse_args(argv)

    trials, max_tasks = args.trials, args.tasks
    budget = args.budget
    if args.smoke:
        trials = min(trials, 8)
        max_tasks = min(max_tasks, 3) if max_tasks else 3
        if budget is None:
            budget = 120.0
    if args.output is None:
        args.output = (DEFAULT_OUTPUT.with_name("BENCH_perf_smoke.json")
                       if args.smoke else DEFAULT_OUTPUT)

    results = run_suite(model=args.model, target=args.target, trials=trials,
                        max_tasks=max_tasks, seed=args.seed)
    results["smoke"] = bool(args.smoke)

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[perf] wrote {args.output}")
    from common import emit_summary

    session = results["tuning_session"]
    emit_summary("perf", {
        "compile_cold_s": round(results["compile"]["cold_s"], 3),
        "compile_warm_s": round(results["compile"]["warm_s"], 4),
        "tuning_elapsed_s": round(session["elapsed_s"], 2),
        "ms_per_trial": round(session["seconds_per_trial"] * 1e3, 2),
        "feature_cache_hit_rate":
            round(results["eval_cache"]["features"]["hit_rate"], 4),
        "lowered_cache_hit_rate":
            round(results["eval_cache"]["lowered"]["hit_rate"], 4),
        "curve_sha256": session["curve_sha256"][:16],
    })

    if budget is not None:
        elapsed = results["tuning_session"]["elapsed_s"]
        if elapsed > budget:
            print(f"[perf] FAIL: tuning session took {elapsed:.1f}s "
                  f"(budget {budget:.0f}s)", file=sys.stderr)
            return 1
        print(f"[perf] tuning session within budget "
              f"({elapsed:.1f}s <= {budget:.0f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
