"""Tuning log database (the "database" box in Figure 11).

Records every measurement so that (a) the cost model can be warm-started from
the history of related workloads, and (b) the graph compiler can pick the
best known configuration for each operator workload when building a model
end-to-end.  Records can be persisted to a JSON-lines file.

Entries are keyed by ``(task, target, config)``: recording the same
configuration again keeps only the best time, and :meth:`TuningDatabase.load`
dedupes whatever it reads, so repeated append/reload cycles neither bloat
memory nor (via :meth:`compact`) the on-disk log.  An entry may carry the
feature vector of its lowered program, which lets a later session warm-start
its cost model from history of the *same operator* even when the exact
workload (and hence the configuration space) differs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["TuningLogEntry", "TuningDatabase", "operator_of"]


def operator_of(task_name: str) -> str:
    """Operator family of a task/workload name (``conv2d_(...)`` ->
    ``conv2d``).  The single parser of the ``kind_(args)`` name format used
    by tasks, log entries and the compiler's history lookups."""
    return task_name.split("_(")[0]


@dataclass
class TuningLogEntry:
    """One (workload, target, config, time) record."""

    task_name: str
    target_name: str
    config_index: int
    config_dict: Dict[str, object]
    mean_time: float
    #: optional loop-program feature vector (for transfer learning)
    features: Optional[List[float]] = None

    @property
    def operator(self) -> str:
        """Operator family of the workload (``conv2d_(...)`` -> ``conv2d``)."""
        return operator_of(self.task_name)

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.task_name, self.target_name, self.config_index)

    def to_json(self) -> str:
        obj = {
            "task": self.task_name,
            "target": self.target_name,
            "config_index": self.config_index,
            "config": self.config_dict,
            "time": self.mean_time,
        }
        if self.features is not None:
            obj["features"] = list(self.features)
        return json.dumps(obj)

    @staticmethod
    def from_json(line: str) -> "TuningLogEntry":
        obj = json.loads(line)
        return TuningLogEntry(obj["task"], obj["target"], obj["config_index"],
                              obj["config"], obj["time"],
                              features=obj.get("features"))


class TuningDatabase:
    """In-memory + optional on-disk store of tuning results."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._by_key: Dict[Tuple[str, str, int], TuningLogEntry] = {}
        # best entry per (task, target) — kernel_time queries this on every
        # templated node of every compile, so it must stay O(1)
        self._best: Dict[Tuple[str, str], TuningLogEntry] = {}
        if path and os.path.exists(path):
            self.load(path)

    def _index(self, entry: TuningLogEntry) -> None:
        best_key = (entry.task_name, entry.target_name)
        best = self._best.get(best_key)
        if best is None or entry.mean_time < best.mean_time:
            self._best[best_key] = entry

    def add(self, entry: TuningLogEntry) -> bool:
        """Insert an entry; duplicates keep the best time.

        Returns ``True`` when the entry was new information (no identical
        ``(task, target, config)`` record with an equal-or-better time was
        already present) — only then is it appended to the on-disk log.
        """
        existing = self._by_key.get(entry.key)
        if existing is not None and existing.mean_time <= entry.mean_time:
            if entry.features is not None and existing.features is None:
                existing.features = list(entry.features)
            return False
        self._by_key[entry.key] = entry
        self._index(entry)
        if self.path:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(entry.to_json() + "\n")
        return True

    def record(self, task, config, mean_time: float,
               features: Optional[Sequence[float]] = None) -> TuningLogEntry:
        entry = TuningLogEntry(task.name, task.target.name, config.index,
                               config.to_dict(), mean_time,
                               features=list(features) if features is not None
                               else None)
        self.add(entry)
        return entry

    def load(self, path: str) -> None:
        """Read a JSONL log, deduping identical ``(task, target, config)``
        entries (keeping the best time).  Binds this database to ``path`` so
        later :meth:`add` calls persist there."""
        self.path = path
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = TuningLogEntry.from_json(line)
                existing = self._by_key.get(entry.key)
                if existing is None or entry.mean_time < existing.mean_time:
                    self._by_key[entry.key] = entry
                    self._index(entry)
                elif entry.features is not None and existing.features is None:
                    existing.features = list(entry.features)

    def compact(self) -> None:
        """Rewrite the on-disk log with exactly the deduped in-memory entries."""
        if not self.path:
            return
        with open(self.path, "w", encoding="utf-8") as handle:
            for entry in self._by_key.values():
                handle.write(entry.to_json() + "\n")

    def best(self, task_name: str, target_name: Optional[str] = None
             ) -> Optional[TuningLogEntry]:
        if target_name is not None:             # O(1): the compiler's hot path
            return self._best.get((task_name, target_name))
        candidates = [e for e in self._best.values() if e.task_name == task_name]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.mean_time)

    def entries_for(self, task_name: str) -> List[TuningLogEntry]:
        return [e for e in self._by_key.values() if e.task_name == task_name]

    def entries_for_operator(self, operator: str) -> List[TuningLogEntry]:
        """All entries whose workload belongs to an operator family."""
        return [e for e in self._by_key.values() if e.operator == operator]

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[TuningLogEntry]:
        return iter(self._by_key.values())
