"""Framed JSON message protocol of the tuning service.

Same framing discipline as the process-pool pipe protocol
(:mod:`repro.runtime.procpool.protocol`), carried over a TCP socket instead
of a ``multiprocessing`` pipe:

``[4s magic "RTS1"][u8 message type][u32 payload length][payload]``

Framing, payload (de)serialisation, truncation handling and fault injection
live in the shared :mod:`repro.runtime.framing` codec; this module
contributes the ``RTS1`` magic and the RPC vocabulary.  Payloads go through
the artifact codec so tuple-valued fields — workload args, config values —
survive the trip exactly.  Python's ``json`` round-trips ``inf`` (as
``Infinity``) and float ``repr`` is shortest-exact, so measured times
arrive bit-identical, which the service's dedup guarantee depends on.

A peer dying mid-frame raises a :class:`ServiceProtocolError` that is also
a :class:`ConnectionError` and names bytes-expected/bytes-got (see
:class:`repro.runtime.framing.TruncatedFrameError`).
"""

from __future__ import annotations

import socket
from typing import Dict, Tuple

from ...runtime.framing import FrameCodec, ProtocolError

__all__ = ["MSG", "ServiceProtocolError", "send_frame", "recv_frame"]

#: a frame carries log entries / model specs, never tensors — cap it
_MAX_PAYLOAD = 32 * 1024 * 1024


class MSG:
    """Message types (u8 on the wire)."""

    HELLO = 1      #: client -> server: introduce (pid)
    WELCOME = 2    #: server -> client: accepted (server pid, entry count)
    LOOKUP = 3     #: client -> server: were these (task, target, config) measured?
    FOUND = 4      #: server -> client: per-key hit (time/error) or null
    PUSH = 5       #: client -> server: raw trial measurements just made
    RECORD = 6     #: client -> server: a session's floored best entry
    ACK = 7        #: server -> client: push/record accepted (new-entry count)
    BEST = 8       #: client -> server: best entry for (task, target)?
    WARM = 9       #: client -> server: transfer entries for an operator
    ENTRIES = 10   #: server -> client: log entries (BEST/WARM reply)
    MODEL = 11     #: client -> server: pretrained cost model for an operator?
    MODEL_SPEC = 12  #: server -> client: serialized model or null
    STATS = 13     #: client -> server: service counters?
    STATS_REPLY = 14  #: server -> client: the counters
    SHUTDOWN = 15  #: client -> server: stop the service
    BYE = 16       #: server -> client: acknowledging shutdown
    ERROR = 17     #: server -> client: request failed (message)

    _NAMES = {1: "HELLO", 2: "WELCOME", 3: "LOOKUP", 4: "FOUND", 5: "PUSH",
              6: "RECORD", 7: "ACK", 8: "BEST", 9: "WARM", 10: "ENTRIES",
              11: "MODEL", 12: "MODEL_SPEC", 13: "STATS", 14: "STATS_REPLY",
              15: "SHUTDOWN", 16: "BYE", 17: "ERROR"}

    @classmethod
    def name(cls, kind: int) -> str:
        return cls._NAMES.get(kind, f"?{kind}")


class ServiceProtocolError(ProtocolError):
    """A malformed, truncated or oversized frame arrived on a connection."""


#: the one RTS1 codec instance (and fault-injection point) of this protocol
CODEC = FrameCodec(b"RTS1", error=ServiceProtocolError,
                   max_payload=_MAX_PAYLOAD, name_of=MSG.name)


def send_frame(sock: socket.socket, kind: int, payload: Dict) -> None:
    """Send one framed message (header + JSON payload)."""
    CODEC.send_sock(sock, kind, payload)


def recv_frame(sock: socket.socket) -> Tuple[int, Dict]:
    """Receive one framed message (blocking); ``(kind, payload)``."""
    return CODEC.recv_sock(sock)
